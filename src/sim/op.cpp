#include "sim/op.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "numeric/certify.hpp"
#include "numeric/sparse_lu.hpp"
#include "numeric/vecops.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "sim/diagnostics.hpp"
#include "sim/mna.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"

namespace snim::sim {

namespace {

/// Telemetry shared across every homotopy-ladder attempt of one operating
/// point so the failure bundle shows the whole search, not just the last
/// Newton run.
struct OpTelemetry {
    StepTelemetryRing ring;
    std::vector<double> last_dx;
    long total_iters = 0;

    explicit OpTelemetry(size_t tail, size_t n) : ring(tail), last_dx(n, 0.0) {}
};

/// One Newton solve at fixed gmin; returns true on convergence and leaves
/// the result in `x`.  `source_scale` ramps the independent sources (the
/// source-stepping rung); a positive `g_anchor` ties every node through a
/// conductance to `*anchor` (the pseudo-transient rung's artificial node
/// capacitors, backward-Euler form).
bool newton_dc(circuit::Netlist& netlist, std::vector<double>& x, double gmin,
               const OpOptions& opt, OpTelemetry& diag, double source_scale = 1.0,
               double g_anchor = 0.0, const std::vector<double>* anchor = nullptr) {
    const size_t n = netlist.unknown_count();
    const bool nonlinear = netlist.partition().has_nonlinear();

    circuit::RealStamper s(n);
    s.enable_compiled_assembly();
    // The stamp sequence (including the optional anchor entries) is fixed
    // for the duration of this solve, so the symbolic analysis and pivot
    // sequence of the first iteration carry across the whole Newton run.
    ReusableLU<double>::Options lu_opt;
    lu_opt.reuse = opt.reuse_lu;
    ReusableLU<double> rlu(lu_opt);
    for (int it = 0; it < opt.max_iter; ++it) {
        obs::ScopedTimer obs_newton("sim/op/newton");
        StepTelemetry tel;
        tel.step = ++diag.total_iters;
        tel.time = gmin; // abscissa: the gmin level this iteration ran at
        tel.newton_iters = it + 1;
        s.clear();
        assemble_dc(netlist, s, x, gmin, source_scale);
        if (g_anchor > 0.0 && anchor) {
            for (size_t i = 0; i < netlist.node_count(); ++i) {
                s.entry(static_cast<circuit::NodeId>(i),
                        static_cast<circuit::NodeId>(i), g_anchor);
                s.rhs_current(static_cast<circuit::NodeId>(i),
                              g_anchor * (*anchor)[i]);
            }
        }
        std::vector<double> xn;
        try {
            if (fault::fires("op.lu.singular"))
                raise("fault injected: op.lu.singular");
            rlu.factor(s.csc());
            xn = rlu.solve(s.rhs());
            tel.lu_min_pivot = rlu.factor_stats().min_pivot;
            tel.lu_fill_growth = rlu.factor_stats().fill_growth;
        } catch (const Error&) {
            tel.converged = false;
            diag.ring.push(tel);
            return false; // singular at this homotopy level
        }
        if (fault::fires("op.newton.nonfinite"))
            xn[0] = std::numeric_limits<double>::quiet_NaN();
        // Clamp voltage-like updates for stability (nonlinear circuits only;
        // a linear solve is exact and must not be truncated).
        double max_dx = 0.0;
        bool nonfinite = false;
        for (size_t i = 0; i < n; ++i) {
            double dx = xn[i] - x[i];
            if (!std::isfinite(dx)) nonfinite = true;
            const bool is_node = i < netlist.node_count();
            if (is_node && nonlinear) {
                const double clamped = std::clamp(dx, -opt.dv_max, opt.dv_max);
                if (clamped != dx) ++tel.clamp_hits;
                dx = clamped;
            }
            diag.last_dx[i] = dx;
            if (std::fabs(dx) > max_dx) {
                max_dx = std::fabs(dx);
                tel.worst_unknown = static_cast<int>(i);
            }
            x[i] += dx;
        }
        tel.residual = max_dx;
        tel.converged = false;
        if (obs::enabled()) {
            // Abscissa: Newton iterations cumulative over the process, so
            // the channel stays monotone across repeated op solves (one
            // scenario runs dozens: calibration, ablations, sweeps).
            static std::atomic<long> cumulative{0};
            obs::ts_append("sim/op/residual",
                           static_cast<double>(++cumulative),
                           std::isfinite(max_dx) ? max_dx : 0.0, "V");
        }
        if (!nonlinear) {
            tel.converged = !nonfinite && std::isfinite(max_dx) &&
                            !fault::fires("op.newton.stall");
            // A linear solve is exact Newton: x == xn, so the certificate
            // covers the solution the caller receives.
            if (tel.converged && opt.certify.enabled && obs::enabled()) {
                const obs::SolveCertificate cert =
                    certify_solve(rlu.lu(), s.csc(), x, s.rhs(), opt.certify);
                tel.cert_omega = cert.omega;
                tel.cert_rcond = cert.rcond;
                obs::record_certificate("op", cert, opt.certify);
            }
            diag.ring.push(tel);
            return tel.converged;
        }
        if (nonfinite || !std::isfinite(max_dx)) {
            diag.ring.push(tel);
            return false;
        }
        if (max_dx < opt.vntol + opt.reltol * norm_inf(x)) {
            if (fault::fires("op.newton.stall")) {
                diag.ring.push(tel);
                continue; // fault: pretend the fixpoint keeps slipping away
            }
            // One undamped verification pass: the iterate must reproduce
            // itself (companion models are exact at the fixpoint).
            s.clear();
            assemble_dc(netlist, s, x, gmin, source_scale);
            if (g_anchor > 0.0 && anchor) {
                for (size_t i = 0; i < netlist.node_count(); ++i) {
                    s.entry(static_cast<circuit::NodeId>(i),
                            static_cast<circuit::NodeId>(i), g_anchor);
                    s.rhs_current(static_cast<circuit::NodeId>(i),
                                  g_anchor * (*anchor)[i]);
                }
            }
            try {
                rlu.factor(s.csc());
                xn = rlu.solve(s.rhs());
            } catch (const Error&) {
                diag.ring.push(tel);
                return false;
            }
            tel.converged =
                max_abs_diff(xn, x) < 10 * (opt.vntol + opt.reltol * norm_inf(x));
            // Certify the accepted fixpoint against the verification system
            // (still held by the stamper and rlu).  A refinement step, if one
            // fires, is one extra chord iteration on the returned iterate.
            if (tel.converged && opt.certify.enabled && obs::enabled()) {
                const obs::SolveCertificate cert =
                    certify_solve(rlu.lu(), s.csc(), x, s.rhs(), opt.certify);
                tel.cert_omega = cert.omega;
                tel.cert_rcond = cert.rcond;
                obs::record_certificate("op", cert, opt.certify);
            }
            diag.ring.push(tel);
            return tel.converged;
        }
        diag.ring.push(tel);
    }
    return false;
}

/// Rung 2: solve at a strong node-to-ground gmin, then continue the
/// solution down decade by decade to the target gmin.
bool gmin_stepping_rung(circuit::Netlist& netlist, std::vector<double>& x,
                        const OpOptions& opt, OpTelemetry& diag) {
    std::vector<double> xg(netlist.unknown_count(), 0.0);
    for (double g = 1e-2; g >= opt.gmin; g *= 0.1) {
        obs::count("sim/op/gmin_steps");
        if (!newton_dc(netlist, xg, g, opt, diag)) return false;
    }
    if (!newton_dc(netlist, xg, opt.gmin, opt, diag)) return false;
    x = std::move(xg);
    return true;
}

/// Rung 3: ramp every independent source from 1/source_steps to 100%,
/// warm-starting each continuation point from the previous one.  The first
/// point is nearly source-free, which a gmin'd Newton almost always wins.
bool source_stepping_rung(circuit::Netlist& netlist, std::vector<double>& x,
                          const OpOptions& opt, OpTelemetry& diag) {
    std::vector<double> xs(netlist.unknown_count(), 0.0);
    for (int k = 1; k <= opt.source_steps; ++k) {
        obs::count("sim/op/source_steps");
        const double scale = static_cast<double>(k) / opt.source_steps;
        if (!newton_dc(netlist, xs, opt.gmin, opt, diag, scale)) return false;
    }
    x = std::move(xs);
    return true;
}

/// Rung 4: pseudo-transient continuation.  Every node is anchored to the
/// previous pseudo-state through a conductance g (backward-Euler form of an
/// artificial node capacitor; g = C/dt).  g relaxes geometrically while the
/// anchored solves keep converging, stiffens on failure, and the rung locks
/// in with a plain Newton solve once the state stops moving at a negligible
/// anchor level.
bool ptran_rung(circuit::Netlist& netlist, std::vector<double>& x,
                const OpOptions& opt, OpTelemetry& diag) {
    std::vector<double> anchor = x;
    double g = opt.ptran_g0;
    const double g_ceiling = opt.ptran_g0 * 1e6;
    for (int k = 0; k < opt.ptran_steps; ++k) {
        obs::count("sim/op/ptran_steps");
        std::vector<double> xk = anchor;
        if (newton_dc(netlist, xk, opt.gmin, opt, diag, 1.0, g, &anchor)) {
            const double move = max_abs_diff(xk, anchor);
            anchor = std::move(xk);
            if (g <= opt.ptran_g_floor &&
                move < opt.vntol + opt.reltol * norm_inf(anchor)) {
                x = anchor;
                return newton_dc(netlist, x, opt.gmin, opt, diag);
            }
            g /= opt.ptran_growth; // grow the pseudo time step
        } else {
            g *= opt.ptran_growth * opt.ptran_growth; // shrink it
            if (g > g_ceiling) return false; // diverging even when frozen
        }
    }
    return false;
}

obs::JsonObject op_options_json(const OpOptions& opt) {
    obs::JsonObject o;
    o.emplace("max_iter", opt.max_iter);
    o.emplace("reltol", opt.reltol);
    o.emplace("vntol", opt.vntol);
    o.emplace("gmin", opt.gmin);
    o.emplace("dv_max", opt.dv_max);
    o.emplace("gmin_stepping", opt.gmin_stepping);
    o.emplace("source_stepping", opt.source_stepping);
    o.emplace("source_steps", opt.source_steps);
    o.emplace("pseudo_transient", opt.pseudo_transient);
    o.emplace("ptran_g0", opt.ptran_g0);
    o.emplace("ptran_growth", opt.ptran_growth);
    o.emplace("ptran_steps", opt.ptran_steps);
    o.emplace("ptran_g_floor", opt.ptran_g_floor);
    o.emplace("reuse_lu", opt.reuse_lu);
    o.emplace("certify_enabled", opt.certify.enabled);
    o.emplace("certify_omega_max", opt.certify.omega_max);
    o.emplace("certify_rcond_min", opt.certify.rcond_min);
    o.emplace("certify_refine", opt.certify.refine);
    o.emplace("certify_stride", opt.certify.stride);
    return o;
}

} // namespace

OpResult operating_point_ex(circuit::Netlist& netlist, const OpOptions& opt) {
    validate_op_options(opt);
    obs::ScopedTimer obs_run("sim/op", obs::Timing::WhenEnabled, obs::Rss::Track);
    netlist.finalize();
    const size_t n = netlist.unknown_count();
    std::vector<double> x0 = opt.initial;
    if (x0.empty()) x0.assign(n, 0.0);
    SNIM_ASSERT(x0.size() == n, "initial point size %zu != %zu", x0.size(), n);

    OpTelemetry diag(static_cast<size_t>(opt.diag_tail), n);

    // The homotopy ladder: each rung is tried in order; the first winner
    // returns.  "op.fail" fails the whole ladder, "op.rung.<name>" vetoes
    // one rung — both let tests drive every recovery and diagnosis path.
    struct Rung {
        const char* name;
        bool enabled;
        bool (*attempt)(circuit::Netlist&, std::vector<double>&, const OpOptions&,
                        OpTelemetry&);
    };
    const Rung ladder[] = {
        {"newton", true,
         [](circuit::Netlist& nl, std::vector<double>& x, const OpOptions& o,
            OpTelemetry& d) { return newton_dc(nl, x, o.gmin, o, d); }},
        {"gmin", opt.gmin_stepping, gmin_stepping_rung},
        {"source", opt.source_stepping, source_stepping_rung},
        {"ptran", opt.pseudo_transient, ptran_rung},
    };

    const bool forced_fail = fault::fires("op.fail");
    obs::JsonObject rung_log;
    int rung_index = 0;
    for (const Rung& rung : ladder) {
        ++rung_index;
        if (!rung.enabled || forced_fail) continue;
        if (fault::fires(format("op.rung.%s", rung.name).c_str())) {
            rung_log.emplace(rung.name, "fault_injected");
            continue;
        }
        obs::count(format("sim/op/rung/%s/attempts", rung.name));
        if (obs::enabled())
            obs::ts_append("sim/op/rung_active",
                           static_cast<double>(diag.total_iters), rung_index, "rung");
        const long iters_before = diag.total_iters;
        std::vector<double> x = x0;
        if (rung.attempt(netlist, x, opt, diag)) {
            obs::count(format("sim/op/rung/%s/wins", rung.name));
            if (rung_index > 1)
                log_info("operating point: recovered on the '%s' rung (%ld Newton "
                         "iterations over the ladder)",
                         rung.name, diag.total_iters);
            OpResult out;
            out.x = std::move(x);
            out.rung = rung.name;
            out.newton_iters = diag.total_iters;
            return out;
        }
        rung_log.emplace(rung.name,
                         format("failed after %ld Newton iterations",
                                diag.total_iters - iters_before));
        log_info("operating point: '%s' rung failed, descending the ladder",
                 rung.name);
    }

    std::string bundle;
    if (opt.diag_bundle) {
        FailureDiagnosis d;
        d.engine = "op";
        d.reason = forced_fail ? "fault_injected" : "newton_no_convergence";
        d.fail_step = diag.total_iters;
        d.fail_time = 0.0;
        d.telemetry = diag.ring.tail();
        d.worst_nodes = worst_unknowns(netlist, diag.last_dx, 5);
        d.options = op_options_json(opt);
        d.extra.emplace("rungs", obs::Json(std::move(rung_log)));
        bundle = write_diagnosis_bundle(d, opt.diag_dir);
    }
    raise("operating point did not converge (%zu unknowns, %ld Newton iterations "
          "over the homotopy ladder)%s%s",
          n, diag.total_iters, bundle.empty() ? "" : "; diagnosis bundle: ",
          bundle.empty() ? "" : bundle.c_str());
}

std::vector<double> operating_point(circuit::Netlist& netlist, const OpOptions& opt) {
    return operating_point_ex(netlist, opt).x;
}

} // namespace snim::sim
