// Checkpoint/restart for the transient engine.
//
// A checkpoint is everything transient() needs to continue a run after a
// SIGKILL and still produce BIT-IDENTICAL results: the accepted solution
// pair (x_acc / x_prev), every device's integration state, the dt backoff
// ladder (level / consecutive accepts / dt_prev / LTE flag), the accepted
// and attempted step counters, the RNG seed, the accuracy-budget ledger's
// partial sums, and the recorded waveform prefix.
//
// On-disk framing (little-endian, fixed field order — see encode_checkpoint):
//
//   "SNIMCKPT" | u32 version | u64 payload bytes | payload | u64 fnv1a64(payload)
//
// Doubles are serialised as their raw 64-bit images, so restored state is
// the exact bit pattern that was saved.
//
// Crash-consistency protocol (write_checkpoint):
//
//   1. rename <path> -> <path>.prev       (keep last-good while writing next)
//   2. write <path>.tmp.<pid>, fsync, rename -> <path>   (atomic publish)
//
// A crash at any point leaves at least one intact snapshot; the loader
// falls back <path> -> <path>.prev when the newest frame is corrupt.  A
// CONFIG DIGEST mismatch (the options hash the PR-6 run manifest carries)
// is never "corruption": it means the caller changed the physics, and
// load_checkpoint refuses with a named error instead of silently
// restarting.
//
// Fault points: `ckpt.write.fail` simulates a failed snapshot write (the
// run keeps its last-good and continues); `ckpt.corrupt` makes the loader
// treat the newest frame as corrupt, exercising the .prev fallback.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/certify.hpp"

namespace snim::sim {

/// Checkpoint policy, carried inside TranOptions.  All fields are
/// OPERATIONAL — excluded from the options config digest, exactly like
/// thread counts and diag dirs — so a resumed run with `resume=true`
/// matches the digest of the run that wrote the snapshot.
struct CheckpointOptions {
    /// Directory for snapshot files; empty disables checkpointing (the
    /// process-wide default policy below may still enable it).
    std::string dir;
    /// File stem inside `dir`; empty -> "tran".  Callers running several
    /// transients per process (oscillator captures, bench corners) must
    /// give each call site a distinct tag.
    std::string tag;
    /// Snapshot every N accepted nominal steps (0 = off).
    long every_steps = 0;
    /// Snapshot when this much wall-clock time passed since the last one
    /// (0 = off).  When the policy enables checkpointing with neither
    /// cadence set, a 5 s wall-clock default applies.  Wall-clock cadence
    /// only affects WHICH steps get snapshotted, never their values.
    double every_s = 0.0;
    /// Resume from <dir>/<tag>.ckpt when present; a missing snapshot is a
    /// fresh start (so a blanket --resume covers never-started corners).
    bool resume = false;
};

inline constexpr uint32_t kCheckpointVersion = 1;

/// The serialised solver state.  Waveform vectors hold the recorded prefix;
/// `average` holds RAW accumulated sums (divided only when the run ends).
struct TranCheckpoint {
    uint64_t config_digest = 0; // digest_options(TranOptions) — the guard
    uint64_t rng_seed = 0;      // util::default_rng_seed() at snapshot time
    int64_t step = 0;           // completed nominal steps
    int64_t attempt_no = 0;     // telemetry step-attempt counter
    int64_t be_steps_done = 0;
    int64_t level = 0;
    int64_t consecutive_accepts = 0;
    int64_t step_retries = 0;   // TranResult::step_retries so far
    int64_t recorded = 0;
    int64_t averaged = 0;
    double dt_prev = 0.0;
    bool lte_ok = true;
    std::vector<double> x_acc;
    std::vector<double> x_prev;
    std::vector<double> device_state;
    std::vector<double> average;
    std::vector<std::string> probe_names;
    std::vector<double> time;
    std::vector<std::vector<double>> waves;
    obs::BudgetState budget;
};

/// <dir>/<tag>.ckpt with the tag slugged for the filesystem ('/' and
/// whitespace become '_').
std::string checkpoint_path(const std::string& dir, const std::string& tag);

/// Serialises `c` into the versioned frame (exposed for tests and the
/// chaos harness).
std::string encode_checkpoint(const TranCheckpoint& c);

/// Parses a frame; raises a named snim::Error on truncation, bad magic,
/// unsupported version, or checksum mismatch.
TranCheckpoint decode_checkpoint(std::string_view data);

/// Double-buffered crash-consistent write (protocol above); returns the
/// frame size in bytes (the sim/ckpt_bytes counter).  Raises on I/O
/// failure — transient() downgrades that to a warning and keeps running on
/// its last-good snapshot.
size_t write_checkpoint(const std::string& path, const TranCheckpoint& c);

/// Loads the newest intact snapshot: tries <path>, then <path>.prev when
/// <path> is corrupt or missing.  Returns nullopt when neither file exists
/// (fresh start).  Raises a named error when every present candidate is
/// corrupt, or when an intact snapshot's config digest != expected_digest
/// (resuming with changed options is refused, never papered over).
std::optional<TranCheckpoint> load_checkpoint(const std::string& path,
                                              uint64_t expected_digest);

/// Process-wide default checkpoint policy, consulted by transient() when
/// TranOptions carries no checkpoint dir — how snim_bench --checkpoint-dir
/// and FlowOptions::resume_from reach every transient in the process.
/// Mirrors sim::set_default_diag_dir.
void set_default_checkpoint(CheckpointOptions policy);
const CheckpointOptions& default_checkpoint();

} // namespace snim::sim
