// Small-signal noise analysis: output noise spectral density at a chosen
// node from the thermal noise of every resistor and the channel noise of
// every MOSFET, computed with the adjoint-network method (one transpose
// solve per frequency, regardless of the number of noise sources).
//
// Complements the substrate-noise work: the same tank and bias network that
// sets the spur levels also sets the oscillator's intrinsic phase noise.
#pragma once

#include <string>
#include <vector>

#include "circuit/netlist.hpp"

namespace snim::sim {

struct NoiseContribution {
    std::string device;
    double psd = 0.0; // V^2/Hz at the output node
};

struct NoiseResult {
    std::vector<double> freq;
    /// Total output noise voltage PSD [V^2/Hz] per frequency.
    std::vector<double> total_psd;
    /// Largest contributors at the LAST frequency point, sorted descending.
    std::vector<NoiseContribution> contributors;

    double total_rms(double f_lo, double f_hi) const;
};

struct NoiseOptions {
    double temperature = 300.0; // [K]
    double gmin = 1e-12;
    /// MOSFET channel thermal noise coefficient (2/3 long-channel).
    double mos_gamma = 2.0 / 3.0;
    size_t max_contributors = 10;
};

/// Output-referred noise at `output_node` around the operating point `xop`.
NoiseResult noise_analysis(circuit::Netlist& netlist, const std::string& output_node,
                           const std::vector<double>& freqs,
                           const std::vector<double>& xop,
                           const NoiseOptions& opt = {});

} // namespace snim::sim
