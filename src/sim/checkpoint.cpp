#include "sim/checkpoint.hpp"

#include <cctype>
#include <cstdio>
#include <cstring>

#include "obs/events.hpp"
#include "obs/provenance.hpp"
#include "obs/registry.hpp"
#include "util/atomic_file.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"

namespace snim::sim {

namespace {

constexpr char kMagic[8] = {'S', 'N', 'I', 'M', 'C', 'K', 'P', 'T'};

// ---- little-endian payload encoding -------------------------------------
// Doubles travel as their raw 64-bit images so restored state is the exact
// bit pattern that was saved (the whole point of the determinism contract).

void put_u64(std::string& b, uint64_t v) {
    char raw[8];
    for (int i = 0; i < 8; ++i) raw[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    b.append(raw, 8);
}

void put_u32(std::string& b, uint32_t v) {
    char raw[4];
    for (int i = 0; i < 4; ++i) raw[i] = static_cast<char>((v >> (8 * i)) & 0xff);
    b.append(raw, 4);
}

void put_i64(std::string& b, int64_t v) { put_u64(b, static_cast<uint64_t>(v)); }

void put_f64(std::string& b, double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    put_u64(b, bits);
}

void put_str(std::string& b, const std::string& s) {
    put_u64(b, s.size());
    b.append(s);
}

void put_vec(std::string& b, const std::vector<double>& v) {
    put_u64(b, v.size());
    for (double d : v) put_f64(b, d);
}

/// Bounds-checked payload cursor; every underrun is the same named error so
/// a truncated frame can never walk off the buffer.
struct Cursor {
    std::string_view data;
    size_t pos = 0;

    void need(size_t n) const {
        if (data.size() - pos < n)
            raise("checkpoint truncated: payload ends %zu bytes short", n);
    }
    uint64_t u64() {
        need(8);
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(static_cast<unsigned char>(data[pos + i]))
                 << (8 * i);
        pos += 8;
        return v;
    }
    int64_t i64() { return static_cast<int64_t>(u64()); }
    double f64() {
        const uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }
    std::string str() {
        const uint64_t len = u64();
        need(len);
        std::string s(data.substr(pos, len));
        pos += len;
        return s;
    }
    std::vector<double> vec() {
        const uint64_t len = u64();
        need(len * 8);
        std::vector<double> v(len);
        for (uint64_t i = 0; i < len; ++i) v[i] = f64();
        return v;
    }
};

std::optional<std::string> read_file(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (!f) return std::nullopt;
    std::string out;
    char buf[65536];
    size_t r;
    while ((r = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, r);
    std::fclose(f);
    return out;
}

CheckpointOptions& default_checkpoint_store() {
    static CheckpointOptions policy;
    return policy;
}

} // namespace

std::string checkpoint_path(const std::string& dir, const std::string& tag) {
    std::string slug;
    slug.reserve(tag.size());
    for (char c : tag) {
        const unsigned char u = static_cast<unsigned char>(c);
        slug.push_back(std::isalnum(u) || c == '.' || c == '-' || c == '_'
                           ? c
                           : '_');
    }
    if (slug.empty()) slug = "tran";
    return dir + "/" + slug + ".ckpt";
}

std::string encode_checkpoint(const TranCheckpoint& c) {
    std::string p;
    put_u64(p, c.config_digest);
    put_u64(p, c.rng_seed);
    put_i64(p, c.step);
    put_i64(p, c.attempt_no);
    put_i64(p, c.be_steps_done);
    put_i64(p, c.level);
    put_i64(p, c.consecutive_accepts);
    put_i64(p, c.step_retries);
    put_i64(p, c.recorded);
    put_i64(p, c.averaged);
    put_f64(p, c.dt_prev);
    put_u64(p, c.lte_ok ? 1 : 0);
    put_vec(p, c.x_acc);
    put_vec(p, c.x_prev);
    put_vec(p, c.device_state);
    put_vec(p, c.average);
    put_u64(p, c.probe_names.size());
    for (const auto& name : c.probe_names) put_str(p, name);
    put_vec(p, c.time);
    put_u64(p, c.waves.size());
    for (const auto& w : c.waves) put_vec(p, w);
    put_u64(p, c.budget.rows.size());
    for (const auto& r : c.budget.rows) {
        put_str(p, r.stage);
        put_str(p, r.unit);
        put_str(p, r.detail);
        put_f64(p, r.worst);
        put_f64(p, r.threshold);
        put_u64(p, r.higher_is_worse ? 1 : 0);
        put_u64(p, r.samples);
        put_u64(p, r.breaches);
    }
    put_u64(p, c.budget.cert_solves);
    put_u64(p, c.budget.cert_breaches);
    put_u64(p, c.budget.cert_refine_steps);
    put_u64(p, c.budget.breach_events);
    put_f64(p, c.budget.worst_omega);
    put_f64(p, c.budget.min_rcond);

    std::string frame;
    frame.reserve(sizeof kMagic + 4 + 8 + p.size() + 8);
    frame.append(kMagic, sizeof kMagic);
    put_u32(frame, kCheckpointVersion);
    put_u64(frame, p.size());
    frame.append(p);
    put_u64(frame, obs::fnv1a64(p));
    return frame;
}

TranCheckpoint decode_checkpoint(std::string_view data) {
    constexpr size_t kHeader = sizeof kMagic + 4 + 8;
    if (data.size() < kHeader + 8)
        raise("checkpoint truncated: %zu bytes is smaller than the frame "
              "header",
              data.size());
    if (std::memcmp(data.data(), kMagic, sizeof kMagic) != 0)
        raise("checkpoint has bad magic (not a SNIMCKPT frame)");
    uint32_t version = 0;
    for (int i = 0; i < 4; ++i)
        version |= static_cast<uint32_t>(
                       static_cast<unsigned char>(data[sizeof kMagic + i]))
                   << (8 * i);
    if (version != kCheckpointVersion)
        raise("unsupported checkpoint version %u (this build reads version %u)",
              version, kCheckpointVersion);
    uint64_t payload_size = 0;
    for (int i = 0; i < 8; ++i)
        payload_size |= static_cast<uint64_t>(static_cast<unsigned char>(
                            data[sizeof kMagic + 4 + i]))
                        << (8 * i);
    if (data.size() < kHeader + payload_size + 8)
        raise("checkpoint truncated: header promises %llu payload bytes, file "
              "has %zu",
              static_cast<unsigned long long>(payload_size),
              data.size() - kHeader - 8);
    const std::string_view payload = data.substr(kHeader, payload_size);
    uint64_t stored_sum = 0;
    for (int i = 0; i < 8; ++i)
        stored_sum |= static_cast<uint64_t>(static_cast<unsigned char>(
                          data[kHeader + payload_size + i]))
                      << (8 * i);
    const uint64_t actual_sum = obs::fnv1a64(payload);
    if (stored_sum != actual_sum)
        raise("checkpoint checksum mismatch (stored %016llx, computed %016llx)",
              static_cast<unsigned long long>(stored_sum),
              static_cast<unsigned long long>(actual_sum));

    Cursor cur{payload};
    TranCheckpoint c;
    c.config_digest = cur.u64();
    c.rng_seed = cur.u64();
    c.step = cur.i64();
    c.attempt_no = cur.i64();
    c.be_steps_done = cur.i64();
    c.level = cur.i64();
    c.consecutive_accepts = cur.i64();
    c.step_retries = cur.i64();
    c.recorded = cur.i64();
    c.averaged = cur.i64();
    c.dt_prev = cur.f64();
    c.lte_ok = cur.u64() != 0;
    c.x_acc = cur.vec();
    c.x_prev = cur.vec();
    c.device_state = cur.vec();
    c.average = cur.vec();
    const uint64_t nprobes = cur.u64();
    c.probe_names.reserve(nprobes);
    for (uint64_t i = 0; i < nprobes; ++i) c.probe_names.push_back(cur.str());
    c.time = cur.vec();
    const uint64_t nwaves = cur.u64();
    c.waves.reserve(nwaves);
    for (uint64_t i = 0; i < nwaves; ++i) c.waves.push_back(cur.vec());
    const uint64_t nrows = cur.u64();
    c.budget.rows.reserve(nrows);
    for (uint64_t i = 0; i < nrows; ++i) {
        obs::BudgetState::Row r;
        r.stage = cur.str();
        r.unit = cur.str();
        r.detail = cur.str();
        r.worst = cur.f64();
        r.threshold = cur.f64();
        r.higher_is_worse = cur.u64() != 0;
        r.samples = cur.u64();
        r.breaches = cur.u64();
        c.budget.rows.push_back(std::move(r));
    }
    c.budget.cert_solves = cur.u64();
    c.budget.cert_breaches = cur.u64();
    c.budget.cert_refine_steps = cur.u64();
    c.budget.breach_events = cur.u64();
    c.budget.worst_omega = cur.f64();
    c.budget.min_rcond = cur.f64();
    return c;
}

size_t write_checkpoint(const std::string& path, const TranCheckpoint& c) {
    if (fault::fires("ckpt.write.fail"))
        raise("fault injected: ckpt.write.fail for '%s'", path.c_str());
    const std::string frame = encode_checkpoint(c);
    // Rotate last-good aside FIRST: a crash mid-write then finds .prev
    // intact, and the atomic publish below never exposes a torn <path>.
    ::rename(path.c_str(), (path + ".prev").c_str());
    util::write_file_atomic(path, frame);
    return frame.size();
}

std::optional<TranCheckpoint> load_checkpoint(const std::string& path,
                                              uint64_t expected_digest) {
    const std::string candidates[2] = {path, path + ".prev"};
    bool any_present = false;
    std::string first_error;
    for (int i = 0; i < 2; ++i) {
        const auto raw = read_file(candidates[i]);
        if (!raw) {
            // A kill between the rotate-aside and the atomic publish leaves
            // only .prev; name that in the fallback warning.
            if (first_error.empty()) first_error = "missing";
            continue;
        }
        any_present = true;
        try {
            if (fault::fires("ckpt.corrupt"))
                raise("fault injected: ckpt.corrupt for '%s'",
                      candidates[i].c_str());
            TranCheckpoint c = decode_checkpoint(*raw);
            if (c.config_digest != expected_digest)
                raise("checkpoint '%s' was written with different options "
                      "(config digest %016llx, current options %016llx) — "
                      "refusing to resume; delete the checkpoint or restore "
                      "the original options",
                      candidates[i].c_str(),
                      static_cast<unsigned long long>(c.config_digest),
                      static_cast<unsigned long long>(expected_digest));
            if (i > 0) {
                obs::count("sim/ckpt_fallbacks");
                obs::event(obs::EventLevel::Warn, "ckpt", "ckpt_fallback",
                           {{"path", candidates[i]},
                            {"reason", first_error}});
                log_warn("checkpoint: '%s' unreadable (%s); resuming from "
                         "previous snapshot '%s'",
                         path.c_str(), first_error.c_str(),
                         candidates[i].c_str());
            }
            return c;
        } catch (const Error& e) {
            // Digest refusal propagates — only corruption falls back.
            if (std::strstr(e.what(), "refusing to resume") != nullptr) throw;
            obs::count("sim/ckpt_corrupt");
            if (first_error.empty()) first_error = e.what();
        }
    }
    if (!any_present) return std::nullopt;
    raise("checkpoint '%s' is unreadable and no intact previous snapshot "
          "exists: %s",
          path.c_str(), first_error.c_str());
}

void set_default_checkpoint(CheckpointOptions policy) {
    default_checkpoint_store() = std::move(policy);
}

const CheckpointOptions& default_checkpoint() {
    return default_checkpoint_store();
}

} // namespace snim::sim
