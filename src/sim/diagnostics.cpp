#include "sim/diagnostics.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <limits>

#include "obs/certify.hpp"
#include "obs/events.hpp"
#include "obs/report.hpp"
#include "util/atomic_file.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

namespace snim::sim {

namespace {

std::string& diag_dir_store() {
    static std::string* dir = new std::string;
    return *dir;
}

obs::Json telemetry_json(const StepTelemetry& t) {
    obs::JsonObject o;
    o.emplace("step", static_cast<double>(t.step));
    o.emplace("time", t.time);
    o.emplace("dt", t.dt);
    o.emplace("newton_iters", t.newton_iters);
    o.emplace("residual", t.residual);
    o.emplace("worst_unknown", t.worst_unknown);
    o.emplace("clamp_hits", t.clamp_hits);
    o.emplace("lu_min_pivot", t.lu_min_pivot);
    o.emplace("lu_fill_growth", t.lu_fill_growth);
    o.emplace("converged", t.converged);
    // Schema 4: certificate columns; -1 = the site was not audited.
    o.emplace("kcl_residual", t.kcl_residual);
    o.emplace("cert_omega", t.cert_omega);
    o.emplace("cert_rcond", t.cert_rcond);
    return obs::Json(std::move(o));
}

void digest_certify_options(obs::ConfigDigest& d, const char* prefix,
                            const obs::CertifyOptions& c) {
    const std::string p = std::string(prefix) + ".certify.";
    d.add(p + "enabled", c.enabled);
    d.add(p + "omega_max", c.omega_max);
    d.add(p + "rcond_min", c.rcond_min);
    d.add(p + "refine", c.refine);
    d.add(p + "max_refine_steps", c.max_refine_steps);
    d.add(p + "stride", c.stride);
}

obs::Json wave_tail_json(const TranResult& r, size_t tail) {
    const size_t n = r.time.size();
    const size_t begin = n > tail ? n - tail : 0;
    obs::JsonObject waves;
    waves.emplace("dt_sample", r.dt_sample);
    waves.emplace("recorded_samples", static_cast<double>(n));
    waves.emplace("tail_begin", static_cast<double>(begin));
    obs::JsonArray time;
    for (size_t k = begin; k < n; ++k) time.push_back(r.time[k]);
    waves.emplace("time", obs::Json(std::move(time)));
    obs::JsonObject probes;
    for (size_t p = 0; p < r.probe_names.size(); ++p) {
        obs::JsonArray w;
        const auto& wave = r.waves[p];
        for (size_t k = begin; k < n && k < wave.size(); ++k) w.push_back(wave[k]);
        probes.emplace(r.probe_names[p], obs::Json(std::move(w)));
    }
    waves.emplace("probes", obs::Json(std::move(probes)));
    return obs::Json(std::move(waves));
}

} // namespace

StepTelemetryRing::StepTelemetryRing(size_t capacity)
    : buf_(std::max<size_t>(1, capacity)) {}

void StepTelemetryRing::push(const StepTelemetry& t) {
    buf_[next_] = t;
    next_ = (next_ + 1) % buf_.size();
    ++pushed_;
}

std::vector<StepTelemetry> StepTelemetryRing::tail() const {
    std::vector<StepTelemetry> out;
    const size_t count = std::min<uint64_t>(pushed_, buf_.size());
    out.reserve(count);
    // Oldest entry sits at next_ once the ring has wrapped.
    const size_t start = pushed_ > buf_.size() ? next_ : 0;
    for (size_t k = 0; k < count; ++k) out.push_back(buf_[(start + k) % buf_.size()]);
    return out;
}

void set_default_diag_dir(std::string dir) { diag_dir_store() = std::move(dir); }

const std::string& default_diag_dir() { return diag_dir_store(); }

void digest_options(obs::ConfigDigest& d, const TranOptions& opt) {
    d.add("tran.tstop", opt.tstop);
    d.add("tran.dt", opt.dt);
    d.add("tran.order", opt.order);
    d.add("tran.gmin", opt.gmin);
    d.add("tran.max_newton", opt.max_newton);
    d.add("tran.reltol", opt.reltol);
    d.add("tran.vntol", opt.vntol);
    d.add("tran.dv_max", opt.dv_max);
    d.add("tran.record_start", opt.record_start);
    d.add("tran.record_stride", opt.record_stride);
    d.add("tran.initial", opt.initial);
    d.add("tran.be_startup_steps", opt.be_startup_steps);
    d.add("tran.accumulate_average", opt.accumulate_average);
    d.add("tran.observe", opt.observe);
    d.add("tran.diag_bundle", opt.diag_bundle);
    d.add("tran.diag_tail", opt.diag_tail);
    d.add("tran.diag_wave_tail", opt.diag_wave_tail);
    d.add("tran.adaptive", opt.adaptive);
    d.add("tran.dt_min", opt.dt_min);
    d.add("tran.max_step_retries", opt.max_step_retries);
    d.add("tran.dt_recovery_accepts", opt.dt_recovery_accepts);
    d.add("tran.lte_control", opt.lte_control);
    d.add("tran.lte_reltol", opt.lte_reltol);
    d.add("tran.lte_abstol", opt.lte_abstol);
    d.add("tran.retry_history", opt.retry_history);
    d.add("tran.reuse_lu", opt.reuse_lu);
    d.add("tran.dense_crossover", opt.dense_crossover);
    d.add("tran.incremental_assembly", opt.incremental_assembly);
    d.add("tran.newton_reuse_jacobian", opt.newton_reuse_jacobian);
    d.add("tran.jacobian_stall_theta", opt.jacobian_stall_theta);
    d.add("tran.jacobian_max_age", opt.jacobian_max_age);
    digest_certify_options(d, "tran", opt.certify);
    d.add("tran.kcl_max", opt.kcl_max);
    // Checkpoint knobs (dir/tag/cadence/resume) are deliberately excluded:
    // they are operational, like thread counts, and a resumed run must
    // produce the same digest as the run that wrote the snapshot.
}

void digest_options(obs::ConfigDigest& d, const OpOptions& opt) {
    d.add("op.max_iter", opt.max_iter);
    d.add("op.reltol", opt.reltol);
    d.add("op.vntol", opt.vntol);
    d.add("op.gmin", opt.gmin);
    d.add("op.dv_max", opt.dv_max);
    d.add("op.gmin_stepping", opt.gmin_stepping);
    d.add("op.initial", opt.initial);
    d.add("op.diag_bundle", opt.diag_bundle);
    d.add("op.diag_tail", opt.diag_tail);
    d.add("op.source_stepping", opt.source_stepping);
    d.add("op.source_steps", opt.source_steps);
    d.add("op.pseudo_transient", opt.pseudo_transient);
    d.add("op.ptran_g0", opt.ptran_g0);
    d.add("op.ptran_growth", opt.ptran_growth);
    d.add("op.ptran_steps", opt.ptran_steps);
    d.add("op.ptran_g_floor", opt.ptran_g_floor);
    d.add("op.reuse_lu", opt.reuse_lu);
    digest_certify_options(d, "op", opt.certify);
}

obs::Json diagnosis_json(const FailureDiagnosis& d) {
    obs::JsonObject root;
    root.emplace("schema_version", kDiagSchemaVersion);
    root.emplace("tool", "snim");
    if (auto m = obs::current_manifest())
        root.emplace("manifest", obs::manifest_json(*m));
    root.emplace("engine", d.engine);
    root.emplace("reason", d.reason);
    root.emplace("fail_time", d.fail_time);
    root.emplace("fail_step", static_cast<double>(d.fail_step));
    root.emplace("options", obs::Json(d.options));

    obs::JsonArray tel;
    for (const auto& t : d.telemetry) tel.push_back(telemetry_json(t));
    root.emplace("telemetry", obs::Json(std::move(tel)));

    obs::JsonArray worst;
    for (const auto& [name, dv] : d.worst_nodes) {
        obs::JsonObject o;
        o.emplace("node", name);
        o.emplace("dv", dv);
        worst.push_back(obs::Json(std::move(o)));
    }
    root.emplace("worst_residual_nodes", obs::Json(std::move(worst)));

    obs::JsonArray retries;
    for (const auto& r : d.retries) {
        obs::JsonObject o;
        o.emplace("step", static_cast<double>(r.step));
        o.emplace("time", r.time);
        o.emplace("dt_from", r.dt_from);
        o.emplace("dt_to", r.dt_to);
        o.emplace("newton_iters", r.newton_iters);
        o.emplace("reason", r.reason);
        retries.push_back(obs::Json(std::move(o)));
    }
    root.emplace("retry_history", obs::Json(std::move(retries)));
    root.emplace("total_step_retries", static_cast<double>(d.total_retries));
    for (const auto& [key, value] : d.extra) root.emplace(key, value);

    if (d.partial) root.emplace("waves", wave_tail_json(*d.partial, d.wave_tail));
    root.emplace("registry", obs::report_json());
    // Schema 3: the event-journal tail, when live telemetry was on — the
    // run's last heartbeats and warnings right next to the failure.
    obs::JsonArray events;
    for (const std::string& line : obs::event_tail()) {
        try {
            events.push_back(obs::Json::parse(line));
        } catch (const Error&) {
            // Torn/overwritten ring record; skip.
        }
    }
    if (!events.empty()) root.emplace("events", obs::Json(std::move(events)));
    return obs::Json(std::move(root));
}

std::string write_diagnosis_bundle(const FailureDiagnosis& d, const std::string& dir) {
    static std::atomic<int> seq{0};
    std::string base = !dir.empty() ? dir : default_diag_dir();
    if (base.empty()) base = ".";
    try {
        const std::string doc = diagnosis_json(d).dump(1);
        // Filenames carry the run id (or a process-unique token when no
        // manifest is set yet) so parallel sweeps — and concurrent processes
        // sharing the directory — never fight over a sequence number; "wx"
        // (O_CREAT|O_EXCL) makes the claim atomic instead of the old
        // stat-then-open race, which lost bundles under parallel workers.
        std::string token;
        if (auto m = obs::current_manifest()) token = m->run_id;
        if (token.empty()) token = obs::process_run_token();
        std::string path;
        std::FILE* f = nullptr;
        for (int attempt = 0; attempt < 10000 && !f; ++attempt) {
            path = format("%s/snim_diag_%s_%s_%04d.json", base.c_str(),
                          d.engine.c_str(), token.c_str(), seq.fetch_add(1));
            f = std::fopen(path.c_str(), "wx");
        }
        if (!f) return {};
        // The "wx" open only CLAIMS the name; the content is then published
        // atomically over it so a crash mid-dump leaves an empty claim file,
        // never a half-written JSON document.
        std::fclose(f);
        util::write_file_atomic(path, doc + "\n");
        log_warn("wrote failure diagnosis bundle: %s", path.c_str());
        return path;
    } catch (...) {
        return {}; // diagnosis must never mask the original solver error
    }
}

std::string unknown_name(const circuit::Netlist& netlist, int index) {
    if (index < 0) return {};
    if (static_cast<size_t>(index) < netlist.node_count())
        return netlist.node_name(static_cast<circuit::NodeId>(index));
    return format("branch:%zu", static_cast<size_t>(index) - netlist.node_count());
}

std::vector<std::pair<std::string, double>> worst_unknowns(
    const circuit::Netlist& netlist, const std::vector<double>& dv, size_t count) {
    std::vector<size_t> order(dv.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    count = std::min(count, order.size());
    // NaN updates rank worst of all; mapping them to +inf keeps the
    // comparator a strict weak ordering (raw NaN comparisons would not be).
    auto key = [&](size_t i) {
        const double m = std::fabs(dv[i]);
        return std::isnan(m) ? std::numeric_limits<double>::infinity() : m;
    };
    std::partial_sort(order.begin(), order.begin() + static_cast<long>(count),
                      order.end(),
                      [&](size_t a, size_t b) { return key(a) > key(b); });
    std::vector<std::pair<std::string, double>> out;
    out.reserve(count);
    for (size_t k = 0; k < count; ++k)
        out.emplace_back(unknown_name(netlist, static_cast<int>(order[k])),
                         dv[order[k]]);
    return out;
}

void validate_tran_options(const TranOptions& opt) {
    if (!(opt.tstop > 0.0))
        raise("TranOptions.tstop must be > 0 (got %g)", opt.tstop);
    if (!(opt.dt > 0.0)) raise("TranOptions.dt must be > 0 (got %g)", opt.dt);
    if (opt.order != 1 && opt.order != 2)
        raise("TranOptions.order must be 1 (BE) or 2 (trapezoidal), got %d", opt.order);
    if (opt.max_newton <= 0)
        raise("TranOptions.max_newton must be > 0 (got %d)", opt.max_newton);
    if (opt.record_stride <= 0)
        raise("TranOptions.record_stride must be > 0 (got %d)", opt.record_stride);
    if (opt.record_start >= opt.tstop)
        raise("TranOptions.record_start (%g) must be before tstop (%g) — nothing "
              "would be recorded",
              opt.record_start, opt.tstop);
    if (!(opt.dv_max > 0.0))
        raise("TranOptions.dv_max must be > 0 (got %g)", opt.dv_max);
    if (opt.reltol < 0.0 || opt.vntol < 0.0)
        raise("TranOptions.reltol/vntol must be >= 0 (got %g / %g)", opt.reltol,
              opt.vntol);
    if (opt.be_startup_steps < 0)
        raise("TranOptions.be_startup_steps must be >= 0 (got %d)",
              opt.be_startup_steps);
    if (opt.diag_tail <= 0)
        raise("TranOptions.diag_tail must be > 0 (got %d)", opt.diag_tail);
    if (opt.diag_wave_tail < 0)
        raise("TranOptions.diag_wave_tail must be >= 0 (got %d)", opt.diag_wave_tail);
    if (opt.dt_min < 0.0)
        raise("TranOptions.dt_min must be >= 0 (got %g)", opt.dt_min);
    if (opt.dt_min > opt.dt)
        raise("TranOptions.dt_min (%g) must not exceed dt (%g)", opt.dt_min, opt.dt);
    if (opt.max_step_retries < 0)
        raise("TranOptions.max_step_retries must be >= 0 (got %d)",
              opt.max_step_retries);
    if (opt.dt_recovery_accepts < 1)
        raise("TranOptions.dt_recovery_accepts must be >= 1 (got %d)",
              opt.dt_recovery_accepts);
    if (opt.lte_reltol < 0.0 || opt.lte_abstol < 0.0)
        raise("TranOptions.lte_reltol/lte_abstol must be >= 0 (got %g / %g)",
              opt.lte_reltol, opt.lte_abstol);
    if (opt.retry_history <= 0)
        raise("TranOptions.retry_history must be > 0 (got %d)", opt.retry_history);
    if (opt.dense_crossover < 0)
        raise("TranOptions.dense_crossover must be >= 0 (got %d)",
              opt.dense_crossover);
    if (!(opt.jacobian_stall_theta > 0.0) || !(opt.jacobian_stall_theta < 1.0))
        raise("TranOptions.jacobian_stall_theta must be in (0, 1) (got %g) — at "
              "1 or above a reused solve could stall forever without tripping "
              "the refactor guard",
              opt.jacobian_stall_theta);
    if (opt.jacobian_max_age < 1)
        raise("TranOptions.jacobian_max_age must be >= 1 (got %d)",
              opt.jacobian_max_age);
    if (!(opt.kcl_max > 0.0))
        raise("TranOptions.kcl_max must be > 0 (got %g)", opt.kcl_max);
    if (opt.checkpoint.every_steps < 0)
        raise("TranOptions.checkpoint.every_steps must be >= 0 (got %ld)",
              opt.checkpoint.every_steps);
    if (opt.checkpoint.every_s < 0.0 || !std::isfinite(opt.checkpoint.every_s))
        raise("TranOptions.checkpoint.every_s must be finite and >= 0 (got %g)",
              opt.checkpoint.every_s);
    obs::validate_certify_options(opt.certify, "TranOptions");
}

void validate_op_options(const OpOptions& opt) {
    if (opt.max_iter <= 0)
        raise("OpOptions.max_iter must be > 0 (got %d)", opt.max_iter);
    if (opt.reltol < 0.0 || opt.vntol < 0.0)
        raise("OpOptions.reltol/vntol must be >= 0 (got %g / %g)", opt.reltol,
              opt.vntol);
    if (!(opt.gmin > 0.0)) raise("OpOptions.gmin must be > 0 (got %g)", opt.gmin);
    if (!(opt.dv_max > 0.0)) raise("OpOptions.dv_max must be > 0 (got %g)", opt.dv_max);
    if (opt.diag_tail <= 0)
        raise("OpOptions.diag_tail must be > 0 (got %d)", opt.diag_tail);
    if (opt.source_steps < 1)
        raise("OpOptions.source_steps must be >= 1 (got %d)", opt.source_steps);
    if (!(opt.ptran_g0 > 0.0))
        raise("OpOptions.ptran_g0 must be > 0 (got %g)", opt.ptran_g0);
    if (!(opt.ptran_growth > 1.0))
        raise("OpOptions.ptran_growth must be > 1 (got %g)", opt.ptran_growth);
    if (opt.ptran_steps < 1)
        raise("OpOptions.ptran_steps must be >= 1 (got %d)", opt.ptran_steps);
    if (!(opt.ptran_g_floor > 0.0) || opt.ptran_g_floor > opt.ptran_g0)
        raise("OpOptions.ptran_g_floor must be in (0, ptran_g0] (got %g, g0 %g)",
              opt.ptran_g_floor, opt.ptran_g0);
    obs::validate_certify_options(opt.certify, "OpOptions");
}

} // namespace snim::sim
