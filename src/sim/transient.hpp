// Transient analysis: fixed-grid trapezoidal (or backward-Euler) integration
// with per-step Newton iteration and convergence recovery.
//
// The recording grid is fixed and deliberate: spur measurement reads tones
// off the sampled waveform with windowed Goertzel sums, which wants uniform
// sampling; and an oscillator run at 3 GHz needs a stable, repeatable phase
// trajectory.  Convergence recovery therefore subdivides *within* the
// nominal grid: a step whose Newton iteration fails (stall, non-finite
// update, singular system) is rejected, the last accepted state is restored,
// and the step is retried at dt/2, dt/4, ... down to dt_min with a bounded
// retry budget; dt regrows by doubling — only on nominal-grid-aligned
// boundaries — after enough consecutive accepted micro-steps.  Every nominal
// boundary is hit exactly, so recorded samples stay on the same uniform grid
// whether or not recovery fired.
#pragma once

#include <string>

#include "circuit/netlist.hpp"
#include "obs/certify.hpp"
#include "sim/checkpoint.hpp"

namespace snim::sim {

struct TranOptions {
    double tstop = 0.0;
    double dt = 0.0;
    int order = 2;          // 1 = backward Euler, 2 = trapezoidal
    double gmin = 1e-12;
    int max_newton = 60;
    double reltol = 1e-4;
    double vntol = 1e-6;
    double dv_max = 0.5;    // Newton step clamp [V]
    /// Recording starts at this time (settle/startup skip).
    double record_start = 0.0;
    /// Keep every k-th accepted step.
    int record_stride = 1;
    /// Operating point to start from; empty -> computed internally.
    std::vector<double> initial;
    /// Number of initial steps integrated with backward Euler to damp the
    /// trapezoidal rule's startup ringing.
    int be_startup_steps = 4;
    /// Accumulate the time-average of the FULL unknown vector over the
    /// recorded window (quasi-DC levels during oscillation).
    bool accumulate_average = false;
    /// Turn on the obs registry for this run (equivalent to SNIM_OBS=1):
    /// per-step phases, Newton counters, solver statistics and the
    /// solver-health time-series channels (sim/transient/newton_iters,
    /// residual, clamp_hits, lu_min_pivot, lu_fill_growth) are recorded and
    /// can be read back via obs::phase_stats / obs::ts_get / report_json.
    bool observe = false;
    /// Write a snim_diag_*.json failure diagnosis bundle when Newton
    /// diverges (the thrown snim::Error names the bundle path).
    bool diag_bundle = true;
    /// Bundle directory; empty -> sim::default_diag_dir() -> current dir.
    std::string diag_dir;
    /// Last-N steps of telemetry kept for the bundle.
    int diag_tail = 64;
    /// Samples of each probed waveform kept in the bundle (the recorded
    /// prefix's tail; 0 drops the waveform section).
    int diag_wave_tail = 256;

    // --- convergence recovery (the retry ladder) ------------------------
    /// Reject-and-retry failed steps with dt backoff instead of raising on
    /// the first Newton failure.  OFF restores the historical behavior:
    /// one attempt per step, first failure raises.
    bool adaptive = true;
    /// Smallest micro-step the backoff may reach; 0 -> dt / 4096.  The
    /// effective floor is always a power-of-two fraction of dt so every
    /// micro-step lands back on the nominal grid.
    double dt_min = 0.0;
    /// Rejected attempts allowed per nominal step before the run gives up
    /// and writes the diagnosis bundle (with the full retry history).
    int max_step_retries = 16;
    /// Consecutive accepted micro-steps required before dt may double back
    /// toward the nominal dt.
    int dt_recovery_accepts = 4;
    /// Gate dt regrowth on a predictor-corrector local-truncation-error
    /// estimate: dt only doubles while |x - x_predicted|_inf stays below
    /// lte_reltol * |x|_inf + lte_abstol.
    bool lte_control = false;
    double lte_reltol = 0.0; // 0 -> reltol
    double lte_abstol = 0.0; // 0 -> vntol
    /// Last-N retry events kept for the diagnosis bundle.
    int retry_history = 64;

    // --- solver hot path ------------------------------------------------
    /// Reuse one symbolic LU analysis (sparsity pattern + pivot sequence)
    /// across Newton iterations and steps, refreshing only the numeric
    /// values (in-place stamp scatter + ReusableLU refactor, guarded by
    /// pivot-health fallback).  OFF restores the historical engine: a fresh
    /// factorization per iteration, dense below dense_crossover unknowns.
    bool reuse_lu = true;
    /// Largest unknown count solved with the dense LU fast path when
    /// reuse_lu is off.  The reusable sparse path beats dense at every size
    /// measured, so this only matters for the legacy configuration.
    int dense_crossover = 160;
    /// Partitioned incremental assembly (sim::TranAssembler): linear stamps
    /// are pre-assembled once per run, companion images cached per
    /// (dt, order), and each Newton iteration restores the linear baseline
    /// and re-stamps only the nonlinear devices.  Bit-identical to the full
    /// pass by construction.  OFF restores the full re-stamp per iteration.
    /// Only applies on the sparse (reuse_lu) engine.
    bool incremental_assembly = true;
    /// Modified Newton: keep the previous LU factors while updates keep
    /// contracting, solving the residual form dx = -LU^{-1}(A x - b); a
    /// guarded fallback refactors on stall, non-finite update, key change
    /// or age.  Converges to the same discrete solution (dx = 0 forces
    /// A x = b regardless of the factors).  OFF refactors every iteration.
    bool newton_reuse_jacobian = true;
    /// Seed each Newton attempt with the same linear extrapolation the LTE
    /// gate uses, x_acc + (dt/dt_prev) (x_acc - x_prev), instead of the
    /// last accepted state.  On smooth waveforms the predictor lands an
    /// order of magnitude closer to the solution, converting most steps
    /// from three Newton iterations to two.  Both history vectors and
    /// dt_prev are part of the checkpoint state, so resumed runs predict
    /// bit-identically.  Only active with incremental_assembly (OFF keeps
    /// the seed engine's x_acc start).
    bool newton_predictor = true;
    /// Stall guard: a reused solve must shrink max_dx to at most
    /// jacobian_stall_theta times the previous iteration's, else the
    /// factors are declared stale and refreshed.
    double jacobian_stall_theta = 0.9;
    /// Unconditional Jacobian refresh after this many consecutive reused
    /// solves, bounding drift across accepted steps.
    int jacobian_max_age = 32;

    // --- numerical-health certificates ----------------------------------
    /// Per-solve certificates on accepted steps (backward error, condition
    /// estimate, counted iterative refinement).  Active only while the obs
    /// registry is enabled; see obs::CertifyOptions for the knobs.
    obs::CertifyOptions certify;
    /// Post-accept KCL conservation audit threshold: worst per-node current
    /// residual |A(x) x - b(x)|_i over the node rows of the accepted system
    /// [A].  Audited every certify.stride-th accepted micro-step, recorded
    /// as the sim/transient/kcl_residual channel and the
    /// sim/kcl_worst_residual histogram, budgeted as stage "sim/kcl".
    double kcl_max = 1e-6;

    // --- checkpoint/restart ---------------------------------------------
    /// Crash-consistent solver-state snapshots and digest-guarded resume
    /// (see sim/checkpoint.hpp).  All knobs are operational — excluded from
    /// the config digest — so a resumed run matches the digest of the run
    /// that wrote the snapshot.  When `checkpoint.dir` is empty the
    /// process-wide policy installed by set_default_checkpoint() applies
    /// (with this struct's `tag` naming the call site).
    CheckpointOptions checkpoint;
};

struct TranResult {
    std::vector<double> time;
    std::vector<std::string> probe_names;
    std::vector<std::vector<double>> waves; // waves[p][k], p indexes probes
    double dt_sample = 0.0;                 // dt * record_stride
    /// Mean of every unknown over the recorded window (when requested).
    std::vector<double> average;
    /// Rejected step attempts recovered by the retry ladder (0 on a clean
    /// run; also mirrored in the obs counter sim/transient/step_retries).
    long step_retries = 0;

    const std::vector<double>& wave(const std::string& probe) const;
};

/// Integrates the netlist to `tstop`, recording the named probe nodes.
/// Newton failures are retried with the dt-backoff ladder (TranOptions
/// recovery knobs); snim::Error is thrown only once the retry budget or
/// dt_min is exhausted.
TranResult transient(circuit::Netlist& netlist, const std::vector<std::string>& probes,
                     const TranOptions& opt);

/// transient() with checkpoint.resume forced on: continues from the last
/// intact snapshot in opt.checkpoint.dir (or the process-default checkpoint
/// dir), bit-identical to the uninterrupted run.  Raises when no checkpoint
/// dir is configured anywhere, or when the snapshot's config digest does
/// not match `opt`.
TranResult resume_transient(circuit::Netlist& netlist,
                            const std::vector<std::string>& probes,
                            const TranOptions& opt);

} // namespace snim::sim
