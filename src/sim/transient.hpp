// Transient analysis: fixed-step trapezoidal (or backward-Euler) integration
// with per-step Newton iteration.
//
// Fixed stepping is deliberate: spur measurement reads tones off the sampled
// waveform with windowed Goertzel sums, which wants uniform sampling; and an
// oscillator run at 3 GHz needs a stable, repeatable phase trajectory.
#pragma once

#include <string>

#include "circuit/netlist.hpp"

namespace snim::sim {

struct TranOptions {
    double tstop = 0.0;
    double dt = 0.0;
    int order = 2;          // 1 = backward Euler, 2 = trapezoidal
    double gmin = 1e-12;
    int max_newton = 60;
    double reltol = 1e-4;
    double vntol = 1e-6;
    double dv_max = 0.5;    // Newton step clamp [V]
    /// Recording starts at this time (settle/startup skip).
    double record_start = 0.0;
    /// Keep every k-th accepted step.
    int record_stride = 1;
    /// Operating point to start from; empty -> computed internally.
    std::vector<double> initial;
    /// Number of initial steps integrated with backward Euler to damp the
    /// trapezoidal rule's startup ringing.
    int be_startup_steps = 4;
    /// Accumulate the time-average of the FULL unknown vector over the
    /// recorded window (quasi-DC levels during oscillation).
    bool accumulate_average = false;
    /// Turn on the obs registry for this run (equivalent to SNIM_OBS=1):
    /// per-step phases, Newton counters, solver statistics and the
    /// solver-health time-series channels (sim/transient/newton_iters,
    /// residual, clamp_hits, lu_min_pivot, lu_fill_growth) are recorded and
    /// can be read back via obs::phase_stats / obs::ts_get / report_json.
    bool observe = false;
    /// Write a snim_diag_*.json failure diagnosis bundle when Newton
    /// diverges (the thrown snim::Error names the bundle path).
    bool diag_bundle = true;
    /// Bundle directory; empty -> sim::default_diag_dir() -> current dir.
    std::string diag_dir;
    /// Last-N steps of telemetry kept for the bundle.
    int diag_tail = 64;
    /// Samples of each probed waveform kept in the bundle (the recorded
    /// prefix's tail; 0 drops the waveform section).
    int diag_wave_tail = 256;
};

struct TranResult {
    std::vector<double> time;
    std::vector<std::string> probe_names;
    std::vector<std::vector<double>> waves; // waves[p][k], p indexes probes
    double dt_sample = 0.0;                 // dt * record_stride
    /// Mean of every unknown over the recorded window (when requested).
    std::vector<double> average;

    const std::vector<double>& wave(const std::string& probe) const;
};

/// Integrates the netlist to `tstop`, recording the named probe nodes.
/// Throws snim::Error if Newton fails at any step.
TranResult transient(circuit::Netlist& netlist, const std::vector<std::string>& probes,
                     const TranOptions& opt);

} // namespace snim::sim
