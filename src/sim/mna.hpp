// MNA system assembly: loops devices and collects stamps.  Shared by every
// analysis (OP, AC, transient).
#pragma once

#include "circuit/netlist.hpp"

namespace snim::sim {

using circuit::Netlist;
using circuit::NodeId;

/// Stamps gmin from every node (not branch unknowns) to ground.  Every
/// assembler — including the incremental transient one — must add gmin
/// through this one function so the stamp order stays identical.
void stamp_gmin(const Netlist& netlist, circuit::RealStamper& s, double gmin);

/// Assembles the DC Newton system at iterate `x`.  `gmin` is added from
/// every node (not branch unknowns) to ground to keep matrices regular.
/// `source_scale` multiplies every independent source value (1.0 for a
/// plain solve; the op solver's source-stepping rung ramps it 0 -> 1).
void assemble_dc(const Netlist& netlist, circuit::RealStamper& s,
                 const std::vector<double>& x, double gmin,
                 double source_scale = 1.0);

/// Assembles a transient Newton system for the step described by `tp`.
void assemble_tran(const Netlist& netlist, circuit::RealStamper& s,
                   const std::vector<double>& x, const circuit::TranParams& tp,
                   double gmin);

/// Assembles the small-signal system at angular frequency `omega` around the
/// operating point `xop`.  Devices in `exclude` (may be null) are skipped --
/// used for coupling-path ablation studies.
void assemble_ac(const Netlist& netlist, circuit::ComplexStamper& s,
                 const std::vector<double>& xop, double omega, double gmin,
                 const std::vector<const circuit::Device*>* exclude = nullptr);

} // namespace snim::sim
