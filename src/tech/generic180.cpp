#include "tech/generic180.hpp"

namespace snim::tech {

Technology generic180() {
    // Twin-well: a conductive p-well / channel-stop surface layer over the
    // high-ohmic (20 ohm cm) bulk.  The surface layer carries the lateral
    // coupling between a device's back-gate and its guard-ring contacts.
    Technology t("generic180",
                 DopingProfile({{1.2, 0.15}, {248.8, 20.0}}, /*backside_grounded=*/false));

    // --- silicon-level layers -------------------------------------------
    {
        Layer l;
        l.name = layers::kActive;
        l.kind = LayerKind::Active;
        l.thickness = 0.2;
        t.add_layer(l);
    }
    {
        Layer l;
        l.name = layers::kNWell;
        l.kind = LayerKind::Well;
        l.thickness = 1.5;
        l.well_cap_area = 0.08e-15; // F/um^2 n-well/p-sub junction
        t.add_layer(l);
    }
    {
        Layer l;
        l.name = layers::kPoly;
        l.kind = LayerKind::Routing;
        l.sheet_res = 8.0;
        l.height = 0.35;
        l.thickness = 0.2;
        l.cap_area = 0.105e-15; // F/um^2 (poly over field oxide)
        l.cap_fringe = 0.06e-15;
        t.add_layer(l);
    }
    {
        Layer l;
        l.name = layers::kContact;
        l.kind = LayerKind::Contact;
        l.via_res = 9.0; // ohm per 0.22 um cut
        l.connects_bottom = layers::kActive;
        l.connects_top = layers::kMetal[0];
        t.add_layer(l);
    }
    {
        // Substrate tap: p+ implant + contact; carries the per-cut resistance
        // from metal1 down into the p- bulk spreading resistance.
        Layer l;
        l.name = layers::kSubTap;
        l.kind = LayerKind::Contact;
        l.via_res = 6.0; // ohm per cut (p+ is low-ohmic; spreading handled by mesh)
        l.connects_bottom = "substrate";
        l.connects_top = layers::kMetal[0];
        t.add_layer(l);
    }

    // --- metal stack ----------------------------------------------------
    // Thin lower metals, thick top metal (inductor metal).
    const double sheet[6] = {0.078, 0.078, 0.078, 0.078, 0.078, 0.022};
    const double height[6] = {1.0, 1.9, 2.8, 3.7, 4.6, 5.8};
    const double thick[6] = {0.48, 0.48, 0.48, 0.48, 0.48, 2.0};
    const double ca[6] = {0.031e-15, 0.017e-15, 0.012e-15,
                          0.009e-15, 0.0075e-15, 0.006e-15}; // F/um^2 to substrate
    const double cf[6] = {0.035e-15, 0.030e-15, 0.027e-15,
                          0.025e-15, 0.023e-15, 0.040e-15}; // F/um perim to substrate
    for (int i = 0; i < 6; ++i) {
        Layer l;
        l.name = layers::kMetal[i];
        l.kind = LayerKind::Routing;
        l.sheet_res = sheet[i];
        l.height = height[i];
        l.thickness = thick[i];
        l.cap_area = ca[i];
        l.cap_fringe = cf[i];
        t.add_layer(l);
    }
    for (int i = 0; i < 5; ++i) {
        Layer l;
        l.name = layers::kVia[i];
        l.kind = LayerKind::Via;
        l.via_res = (i < 4) ? 4.5 : 1.2; // top via is wide
        l.connects_bottom = layers::kMetal[i];
        l.connects_top = layers::kMetal[i + 1];
        t.add_layer(l);
    }

    // --- device model cards ----------------------------------------------
    {
        MosModelCard n;
        n.name = "nch";
        n.is_nmos = true;
        n.vt0 = 0.46;
        n.kp = 175e-6;
        n.gamma = 0.60;
        n.phi = 0.84;
        n.lambda = 0.09;
        n.cox = 8.4e-15;
        n.cj = 0.98e-15;
        n.cjsw = 0.22e-15;
        n.pb = 0.73;
        n.mj = 0.36;
        n.cgso = 0.36e-15;
        n.cgdo = 0.36e-15;
        t.add_mos_model(n);
    }
    {
        MosModelCard p;
        p.name = "pch";
        p.is_nmos = false;
        p.vt0 = 0.48;
        p.kp = 60e-6;
        p.gamma = 0.50;
        p.phi = 0.80;
        p.lambda = 0.12;
        p.cox = 8.4e-15;
        p.cj = 1.10e-15;
        p.cjsw = 0.24e-15;
        p.pb = 0.78;
        p.mj = 0.38;
        p.cgso = 0.36e-15;
        p.cgdo = 0.36e-15;
        t.add_mos_model(p);
    }
    {
        VaractorCard v;
        v.name = "nvar";
        v.cmax_per_area = 8.4e-15;
        v.cmin_ratio = 0.34;
        v.vmid = 0.05;
        v.vslope = 0.4;
        v.nwell_cap_area = 0.08e-15;
        t.add_varactor_model(v);
    }
    return t;
}

} // namespace snim::tech
