// Builtin generic 0.18 um 1P6M high-ohmic CMOS technology.
//
// Substitutes the proprietary PDK the paper used.  Values are representative
// of a late-90s/early-2000s 0.18 um node: 6 Al metals, tungsten contacts and
// vias, 20 ohm cm p- bulk without epi, twin well.
#pragma once

#include "tech/technology.hpp"

namespace snim::tech {

/// Returns the generic 0.18 um technology (fresh copy each call).
Technology generic180();

// Layer names used by the generic 0.18 um technology and the layout
// generators in src/testcases.
namespace layers {
inline constexpr const char* kActive = "active";
inline constexpr const char* kNWell = "nwell";
inline constexpr const char* kPoly = "poly";
inline constexpr const char* kContact = "contact";       // metal1 <-> poly/active
inline constexpr const char* kSubTap = "subtap";         // substrate contact (p+)
inline constexpr const char* kMetal[6] = {"metal1", "metal2", "metal3",
                                          "metal4", "metal5", "metal6"};
inline constexpr const char* kVia[5] = {"via1", "via2", "via3", "via4", "via5"};
} // namespace layers

} // namespace snim::tech
