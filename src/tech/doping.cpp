#include "tech/doping.hpp"

#include "util/error.hpp"

namespace snim::tech {

DopingProfile::DopingProfile(std::vector<DopingLayer> layers, bool backside_grounded)
    : layers_(std::move(layers)), backside_grounded_(backside_grounded) {
    SNIM_ASSERT(!layers_.empty(), "doping profile needs at least one layer");
    for (const auto& l : layers_) {
        SNIM_ASSERT(l.thickness > 0, "doping layer thickness must be positive");
        SNIM_ASSERT(l.resistivity > 0, "doping layer resistivity must be positive");
    }
}

double DopingProfile::depth() const {
    double d = 0.0;
    for (const auto& l : layers_) d += l.thickness;
    return d;
}

double DopingProfile::resistivity_at(double z_um) const {
    SNIM_ASSERT(z_um >= 0, "depth must be non-negative");
    double z = 0.0;
    for (const auto& l : layers_) {
        z += l.thickness;
        if (z_um < z) return l.resistivity * 1e-2; // ohm cm -> ohm m
    }
    return layers_.back().resistivity * 1e-2;
}

double DopingProfile::conductivity_at(double z_um) const {
    return 1.0 / resistivity_at(z_um);
}

DopingProfile DopingProfile::high_ohmic(double rho_ohm_cm, double depth_um) {
    return DopingProfile({{depth_um, rho_ohm_cm}}, /*backside_grounded=*/false);
}

DopingProfile DopingProfile::epi(double epi_rho_ohm_cm, double epi_um,
                                 double bulk_rho_ohm_cm, double depth_um) {
    SNIM_ASSERT(depth_um > epi_um, "bulk depth must exceed epi depth");
    return DopingProfile({{epi_um, epi_rho_ohm_cm}, {depth_um - epi_um, bulk_rho_ohm_cm}},
                         /*backside_grounded=*/true);
}

} // namespace snim::tech
