// Process technology description: layer stack, electrical coefficients and
// device model cards.  This is the "process technology" box of the paper's
// Figure 2 -- it feeds the substrate, interconnect and circuit extractors.
//
// The real design used a proprietary 0.18 um 1P6M high-ohmic CMOS PDK; we
// substitute `generic180()` (see generic180.hpp) with representative values.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "tech/doping.hpp"

namespace snim::tech {

enum class LayerKind {
    Routing,    // metal or poly: carries sheet resistance + caps
    Via,        // inter-layer connection: resistance per cut
    Contact,    // routing-to-silicon connection (also substrate contacts)
    Well,       // n-well: capacitive interface to substrate
    Active,     // diffusion
    Marker,     // device recognition / labels, no electrical model
};

struct Layer {
    std::string name;
    LayerKind kind = LayerKind::Marker;
    /// Sheet resistance [ohm/sq] for Routing layers.
    double sheet_res = 0.0;
    /// Resistance per via/contact cut [ohm] for Via/Contact layers.
    double via_res = 0.0;
    /// Height of the layer bottom above the substrate surface [um].
    double height = 0.0;
    /// Layer thickness [um].
    double thickness = 0.0;
    /// Parallel-plate capacitance to substrate [F/um^2] for Routing layers.
    double cap_area = 0.0;
    /// Fringe capacitance to substrate [F/um] of perimeter.
    double cap_fringe = 0.0;
    /// For Well layers: depletion capacitance to substrate [F/um^2].
    double well_cap_area = 0.0;
    /// Layers this via/contact connects (names), bottom then top.
    std::string connects_bottom;
    std::string connects_top;
};

/// Level-1-style MOSFET model card with junction capacitances.  Values are
/// per-square / per-micron so devices scale with drawn W/L.
struct MosModelCard {
    std::string name;
    bool is_nmos = true;
    double vt0 = 0.45;      // zero-bias threshold [V] (magnitude)
    double kp = 170e-6;     // transconductance parameter u*Cox [A/V^2]
    double gamma = 0.58;    // body-effect coefficient [V^0.5]
    double phi = 0.8;       // surface potential 2*phiF [V]
    double lambda = 0.08;   // channel-length modulation [1/V]
    double cox = 8.5e-15;   // gate-oxide capacitance [F/um^2]
    double cj = 1.0e-15;    // junction area capacitance [F/um^2]
    double cjsw = 0.25e-15; // junction sidewall capacitance [F/um]
    double pb = 0.75;       // junction built-in potential [V]
    double mj = 0.4;        // area grading coefficient
    double cgso = 0.35e-15; // gate-source overlap [F/um]
    double cgdo = 0.35e-15; // gate-drain overlap [F/um]
};

/// Accumulation-mode NMOS varactor card (C-V described by a tanh transition).
struct VaractorCard {
    std::string name;
    double cmax_per_area = 8.5e-15; // [F/um^2] accumulation
    double cmin_ratio = 0.35;       // Cmin/Cmax
    double vmid = 0.1;              // C-V inflection [V]
    double vslope = 0.35;           // transition slope [V]
    /// n-well to substrate junction capacitance [F/um^2].
    double nwell_cap_area = 0.08e-15;
};

class Technology {
public:
    Technology(std::string name, DopingProfile substrate);

    const std::string& name() const { return name_; }
    const DopingProfile& substrate() const { return substrate_; }

    void add_layer(Layer layer);
    void add_mos_model(MosModelCard card);
    void add_varactor_model(VaractorCard card);

    const Layer& layer(const std::string& name) const;
    const Layer* find_layer(const std::string& name) const;
    bool has_layer(const std::string& name) const { return find_layer(name) != nullptr; }
    const std::vector<Layer>& layers() const { return layers_; }

    const MosModelCard& mos_model(const std::string& name) const;
    const VaractorCard& varactor_model(const std::string& name) const;

    /// Routing layers ordered by height (lowest first).
    std::vector<const Layer*> routing_layers() const;

private:
    std::string name_;
    DopingProfile substrate_;
    std::vector<Layer> layers_;
    std::vector<MosModelCard> mos_models_;
    std::vector<VaractorCard> varactor_models_;
};

} // namespace snim::tech
