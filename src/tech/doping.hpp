// Substrate doping description: a stack of uniform-resistivity slabs from
// the surface down.  The paper's wafer is high-ohmic (20 ohm cm) twin-well
// material; lightly doped bulk means the substrate is well modelled as a
// resistive mesh with small dielectric capacitance in parallel.
#pragma once

#include <vector>

namespace snim::tech {

struct DopingLayer {
    double thickness = 0.0;       // [um]
    double resistivity = 20.0;    // [ohm cm]
};

class DopingProfile {
public:
    DopingProfile() = default;
    explicit DopingProfile(std::vector<DopingLayer> layers, bool backside_grounded = false);

    const std::vector<DopingLayer>& layers() const { return layers_; }
    bool backside_grounded() const { return backside_grounded_; }

    /// Total stack depth [um].
    double depth() const;

    /// Conductivity [S/m] at depth z um below the surface (z in [0, depth)).
    double conductivity_at(double z_um) const;

    /// Resistivity [ohm m] at depth z um.
    double resistivity_at(double z_um) const;

    /// High-ohmic uniform wafer like the paper's (rho in ohm cm).
    static DopingProfile high_ohmic(double rho_ohm_cm = 20.0, double depth_um = 250.0);

    /// Low-ohmic wafer with highly doped bulk under a lightly doped epi
    /// layer (for comparison studies; EPI-type substrates behave as a
    /// single-node "ground plane").
    static DopingProfile epi(double epi_rho_ohm_cm = 15.0, double epi_um = 7.0,
                             double bulk_rho_ohm_cm = 0.015, double depth_um = 250.0);

private:
    std::vector<DopingLayer> layers_;
    bool backside_grounded_ = false;
};

} // namespace snim::tech
