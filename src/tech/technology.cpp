#include "tech/technology.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace snim::tech {

Technology::Technology(std::string name, DopingProfile substrate)
    : name_(std::move(name)), substrate_(std::move(substrate)) {}

void Technology::add_layer(Layer layer) {
    SNIM_ASSERT(!layer.name.empty(), "layer needs a name");
    SNIM_ASSERT(find_layer(layer.name) == nullptr, "duplicate layer '%s'",
                layer.name.c_str());
    layers_.push_back(std::move(layer));
}

void Technology::add_mos_model(MosModelCard card) {
    SNIM_ASSERT(!card.name.empty(), "mos model needs a name");
    mos_models_.push_back(std::move(card));
}

void Technology::add_varactor_model(VaractorCard card) {
    SNIM_ASSERT(!card.name.empty(), "varactor model needs a name");
    varactor_models_.push_back(std::move(card));
}

const Layer* Technology::find_layer(const std::string& name) const {
    for (const auto& l : layers_)
        if (l.name == name) return &l;
    return nullptr;
}

const Layer& Technology::layer(const std::string& name) const {
    const Layer* l = find_layer(name);
    if (!l) raise("technology '%s' has no layer '%s'", name_.c_str(), name.c_str());
    return *l;
}

const MosModelCard& Technology::mos_model(const std::string& name) const {
    for (const auto& m : mos_models_)
        if (m.name == name) return m;
    raise("technology '%s' has no MOS model '%s'", name_.c_str(), name.c_str());
}

const VaractorCard& Technology::varactor_model(const std::string& name) const {
    for (const auto& m : varactor_models_)
        if (m.name == name) return m;
    raise("technology '%s' has no varactor model '%s'", name_.c_str(), name.c_str());
}

std::vector<const Layer*> Technology::routing_layers() const {
    std::vector<const Layer*> out;
    for (const auto& l : layers_)
        if (l.kind == LayerKind::Routing) out.push_back(&l);
    std::sort(out.begin(), out.end(),
              [](const Layer* a, const Layer* b) { return a->height < b->height; });
    return out;
}

} // namespace snim::tech
