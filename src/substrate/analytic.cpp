#include "substrate/analytic.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/units.hpp"

namespace snim::substrate {

double disc_spreading_resistance(double rho_ohm_cm, double a_um) {
    SNIM_ASSERT(rho_ohm_cm > 0 && a_um > 0, "bad spreading-resistance arguments");
    const double rho = rho_ohm_cm * 1e-2; // ohm m
    const double a = a_um * 1e-6;
    return rho / (4.0 * a);
}

double equivalent_disc_radius(double w_um, double h_um) {
    SNIM_ASSERT(w_um > 0 && h_um > 0, "bad contact size");
    return std::sqrt(w_um * h_um / units::kPi);
}

double potential_ratio_at_distance(double a_um, double d_um) {
    SNIM_ASSERT(a_um > 0 && d_um > a_um, "need d > a");
    // Disc at potential V spreads current I = V / (rho/4a); the potential at
    // lateral distance d on the surface is rho I / (2 pi d) = V 2a/(pi d).
    return 2.0 * a_um / (units::kPi * d_um);
}

double two_contact_resistance(double rho_ohm_cm, double a_um, double d_um) {
    SNIM_ASSERT(d_um > 2 * a_um, "contacts overlap");
    const double rho = rho_ohm_cm * 1e-2;
    const double a = a_um * 1e-6;
    const double d = d_um * 1e-6;
    return rho / (2.0 * a) - rho / (units::kPi * d);
}

} // namespace snim::substrate
