#include "substrate/mesh.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/units.hpp"

namespace snim::substrate {

std::vector<double> graded_edges(double lo, double hi, double flo, double fhi,
                                 double fine, double growth, double max_pitch,
                                 int max_cells) {
    SNIM_ASSERT(hi > lo, "degenerate interval");
    SNIM_ASSERT(fine > 0 && growth > 1.0 && max_pitch >= fine, "bad grading");
    flo = std::clamp(flo, lo, hi);
    fhi = std::clamp(fhi, lo, hi);
    if (fhi <= flo) {
        // No focus: uniform at max_pitch (bounded by max_cells).
        flo = fhi = lo;
    }

    std::vector<double> edges;
    // Fine region (uniform).
    const int nfine = std::max(1, static_cast<int>(std::ceil((fhi - flo) / fine)));
    for (int i = 0; i <= nfine; ++i)
        edges.push_back(flo + (fhi - flo) * static_cast<double>(i) / nfine);

    // Grow outward to the right.
    double step = fine;
    while (edges.back() < hi - 1e-9) {
        step = std::min(step * growth, max_pitch);
        edges.push_back(std::min(edges.back() + step, hi));
    }
    // Grow outward to the left (prepend).
    std::vector<double> left;
    step = fine;
    double x = edges.front();
    while (x > lo + 1e-9) {
        step = std::min(step * growth, max_pitch);
        x = std::max(x - step, lo);
        left.push_back(x);
    }
    std::reverse(left.begin(), left.end());
    left.insert(left.end(), edges.begin(), edges.end());
    edges = std::move(left);

    // Coarsen if over budget: merge every other interior edge.
    while (static_cast<int>(edges.size()) - 1 > max_cells) {
        std::vector<double> merged;
        merged.push_back(edges.front());
        for (size_t i = 2; i + 1 < edges.size(); i += 2) merged.push_back(edges[i]);
        merged.push_back(edges.back());
        edges = std::move(merged);
    }
    SNIM_ASSERT(edges.size() >= 3, "grading produced too few cells");
    return edges;
}

Mesh::Mesh(const geom::Rect& area_um, const tech::DopingProfile& profile,
           const MeshOptions& opt)
    : area_(area_um.inflated(opt.margin)) {
    SNIM_ASSERT(!area_.empty(), "empty mesh area");
    SNIM_ASSERT(!opt.z_steps.empty(), "mesh needs at least one slab");

    geom::Rect focus = opt.focus;
    if (focus.empty()) focus = area_; // uniform-ish fine mesh, capped below
    xe_ = graded_edges(area_.x0, area_.x1, focus.x0, focus.x1, opt.fine_pitch,
                       opt.growth, opt.max_pitch, opt.max_cells_per_axis);
    ye_ = graded_edges(area_.y0, area_.y1, focus.y0, focus.y1, opt.fine_pitch,
                       opt.growth, opt.max_pitch, opt.max_cells_per_axis);

    // Scale slab thicknesses to the profile depth.
    double zsum = 0.0;
    for (double t : opt.z_steps) {
        SNIM_ASSERT(t > 0, "slab thickness must be positive");
        zsum += t;
    }
    const double scale = profile.depth() / zsum;
    zt_ = opt.z_steps;
    for (double& t : zt_) t *= scale;
    double z = 0.0;
    zc_.resize(zt_.size());
    for (size_t i = 0; i < zt_.size(); ++i) {
        zc_[i] = z + 0.5 * zt_[i];
        z += zt_[i];
    }
    backside_grounded_ = profile.backside_grounded();

    net_.node_count = node_count();
    build(profile);
}

int Mesh::node(int ix, int iy, int iz) const {
    SNIM_ASSERT(ix >= 0 && ix < nx() && iy >= 0 && iy < ny() && iz >= 0 && iz < nz(),
                "mesh index (%d,%d,%d) out of range", ix, iy, iz);
    return (iz * ny() + iy) * nx() + ix;
}

geom::Rect Mesh::cell_rect(int ix, int iy) const {
    return geom::Rect(xe_[static_cast<size_t>(ix)], ye_[static_cast<size_t>(iy)],
                      xe_[static_cast<size_t>(ix) + 1], ye_[static_cast<size_t>(iy) + 1]);
}

std::vector<std::pair<int, double>> Mesh::surface_overlap(const geom::Rect& r) const {
    std::vector<std::pair<int, double>> out;
    // Binary search for the index ranges.
    auto lower = [](const std::vector<double>& e, double v) {
        return static_cast<int>(std::upper_bound(e.begin(), e.end(), v) - e.begin()) - 1;
    };
    const int ix0 = std::clamp(lower(xe_, r.x0), 0, nx() - 1);
    const int ix1 = std::clamp(lower(xe_, r.x1), 0, nx() - 1);
    const int iy0 = std::clamp(lower(ye_, r.y0), 0, ny() - 1);
    const int iy1 = std::clamp(lower(ye_, r.y1), 0, ny() - 1);
    for (int ix = ix0; ix <= ix1; ++ix) {
        for (int iy = iy0; iy <= iy1; ++iy) {
            const double a = cell_rect(ix, iy).intersection(r).area();
            if (a > 0) out.emplace_back(node(ix, iy, 0), a);
        }
    }
    return out;
}

int Mesh::add_aux_node() {
    const int id = static_cast<int>(net_.node_count);
    ++net_.node_count;
    return id;
}

void Mesh::build(const tech::DopingProfile& profile) {
    // Box-integration conductances between adjacent cell centres.  All
    // geometry in um; sigma in S/m, so G = sigma * area_um2 / dist_um * 1e-6.
    constexpr double kUm = 1e-6;
    const double eps_si = units::kEps0 * units::kEpsSi;

    auto dx = [&](int ix) { return xe_[static_cast<size_t>(ix) + 1] - xe_[static_cast<size_t>(ix)]; };
    auto dy = [&](int iy) { return ye_[static_cast<size_t>(iy) + 1] - ye_[static_cast<size_t>(iy)]; };

    for (int iz = 0; iz < nz(); ++iz) {
        const double sigma = profile.conductivity_at(zc_[static_cast<size_t>(iz)]);
        const double tz = zt_[static_cast<size_t>(iz)];
        // Lateral x-neighbours: series of the two half-cells.
        for (int iy = 0; iy < ny(); ++iy) {
            for (int ix = 0; ix + 1 < nx(); ++ix) {
                const double dist = 0.5 * (dx(ix) + dx(ix + 1));
                const double g = sigma * (dy(iy) * tz) / dist * kUm;
                net_.add_g(node(ix, iy, iz), node(ix + 1, iy, iz), g);
                net_.add_c(node(ix, iy, iz), node(ix + 1, iy, iz),
                           eps_si * (dy(iy) * tz) / dist * kUm);
            }
        }
        // Lateral y-neighbours.
        for (int iy = 0; iy + 1 < ny(); ++iy) {
            for (int ix = 0; ix < nx(); ++ix) {
                const double dist = 0.5 * (dy(iy) + dy(iy + 1));
                const double g = sigma * (dx(ix) * tz) / dist * kUm;
                net_.add_g(node(ix, iy, iz), node(ix, iy + 1, iz), g);
                net_.add_c(node(ix, iy, iz), node(ix, iy + 1, iz),
                           eps_si * (dx(ix) * tz) / dist * kUm);
            }
        }
        // Vertical neighbours (series of the two half-slabs).
        if (iz + 1 < nz()) {
            const double sig2 = profile.conductivity_at(zc_[static_cast<size_t>(iz) + 1]);
            const double t2 = zt_[static_cast<size_t>(iz) + 1];
            for (int iy = 0; iy < ny(); ++iy) {
                for (int ix = 0; ix < nx(); ++ix) {
                    const double a = dx(ix) * dy(iy);
                    const double g1 = sigma * a / (0.5 * tz) * kUm;
                    const double g2 = sig2 * a / (0.5 * t2) * kUm;
                    const double c1 = eps_si * a / (0.5 * tz) * kUm;
                    const double c2 = eps_si * a / (0.5 * t2) * kUm;
                    net_.add_g(node(ix, iy, iz), node(ix, iy, iz + 1),
                               g1 * g2 / (g1 + g2));
                    net_.add_c(node(ix, iy, iz), node(ix, iy, iz + 1),
                               c1 * c2 / (c1 + c2));
                }
            }
        }
    }

    // Backside contact (grounded wafer chuck) for epi-type substrates.
    if (backside_grounded_) {
        const int iz = nz() - 1;
        const double sigma = profile.conductivity_at(zc_[static_cast<size_t>(iz)]);
        for (int iy = 0; iy < ny(); ++iy)
            for (int ix = 0; ix < nx(); ++ix) {
                const double g = sigma * (dx(ix) * dy(iy)) /
                                 (0.5 * zt_[static_cast<size_t>(iz)]) * kUm;
                net_.add_g(node(ix, iy, iz), -1, g);
            }
    }
}

} // namespace snim::substrate
