// Builds substrate port specifications from a layout: substrate-tap shapes
// grouped per net become resistive ports, n-well shapes become capacitive
// ports, and callers can add probe ports under sensitive devices.
#pragma once

#include <vector>

#include "layout/connectivity.hpp"
#include "layout/layout.hpp"
#include "substrate/extractor.hpp"
#include "tech/technology.hpp"

namespace snim::substrate {

struct PortsFromLayoutOptions {
    /// Contact resistance per substrate-tap cut [ohm] (from the technology
    /// subtap layer when zero).
    double tap_res_per_cut = 0.0;
    /// Assumed cut size for taps drawn as long strips [um].
    double cut_pitch = 0.5;
};

/// A spatially connected group of substrate-tap shapes on one net.  The MOS
/// ground ring and the outer guard ring of the paper sit on the SAME net
/// but at different locations with different wiring resistance to the pad,
/// so each cluster must become its own substrate port.
struct TapCluster {
    std::string name;         // port / circuit node name
    int net = -1;             // net id
    geom::Region region;
    double cuts = 1.0;        // estimated contact cut count
    std::vector<size_t> shape_indices;
};

/// Groups the subtap shapes of each net into touching clusters
/// (deterministic naming: "<net>!sub" if unique on the net, otherwise
/// "<net>!sub<k>" ordered by cluster bounding box).  Used by BOTH the
/// substrate port builder and the interconnect extractor so the stitched
/// node names agree.
std::vector<TapCluster> cluster_taps(const std::vector<layout::Shape>& shapes,
                                     const layout::ExtractedNets& nets,
                                     const tech::Technology& tech,
                                     double cut_pitch = 0.5);

/// Scans the flattened layout: every tap cluster yields a Resistive port;
/// every labelled n-well region yields a Capacitive port named
/// "<label>!well".  The returned specs reference the net names discovered
/// by connectivity extraction.
std::vector<PortSpec> ports_from_layout(const std::vector<layout::Shape>& shapes,
                                        const layout::ExtractedNets& nets,
                                        const std::vector<layout::Label>& labels,
                                        const tech::Technology& tech,
                                        const PortsFromLayoutOptions& opt = {});

/// Port name helpers shared with the impact flow.
std::string tap_port_name(const std::string& net);
std::string well_port_name(const std::string& net);

} // namespace snim::substrate
