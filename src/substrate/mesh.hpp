// 3-D finite-difference discretisation of the substrate volume into a
// resistive (plus dielectric-capacitance) box mesh -- the numerical engine
// behind the substrate extractor, equivalent in spirit to SubstrateStorm's
// substrate solver.
//
// Lateral grid: non-uniform tensor mesh.  Cells are fine (`fine_pitch`)
// inside the focus window -- the circuit core, where back-gate-to-ring
// potential differences must be resolved -- and grow geometrically towards
// the chip edge.  Vertical grid: user-supplied slab thicknesses, fine near
// the surface where contacts and wells live, coarse in the bulk.
#pragma once

#include <vector>

#include "geom/rect.hpp"
#include "mor/elimination.hpp"
#include "tech/doping.hpp"

namespace snim::substrate {

struct MeshOptions {
    /// Fine lateral cell pitch inside the focus window [um].
    double fine_pitch = 5.0;
    /// Geometric growth of the cell pitch outside the focus window.
    double growth = 1.45;
    /// Maximum lateral pitch [um].
    double max_pitch = 60.0;
    /// Focus window (um).  Empty -> the whole analysed area is meshed at a
    /// pitch chosen so the cell count stays moderate.
    geom::Rect focus;
    /// Slab thicknesses from the surface down [um]; scaled to the doping
    /// profile depth if their sum differs.
    std::vector<double> z_steps = {0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 122.5};
    /// Margin added around the analysed area [um].
    double margin = 25.0;
    /// Hard cap on lateral cells per axis (pitch is coarsened if exceeded).
    int max_cells_per_axis = 160;
};

class Mesh {
public:
    Mesh(const geom::Rect& area_um, const tech::DopingProfile& profile,
         const MeshOptions& opt);

    int nx() const { return static_cast<int>(xe_.size()) - 1; }
    int ny() const { return static_cast<int>(ye_.size()) - 1; }
    int nz() const { return static_cast<int>(zc_.size()); }
    size_t node_count() const {
        return static_cast<size_t>(nx()) * static_cast<size_t>(ny()) * zc_.size();
    }

    /// Mesh node id for cell (ix, iy, iz); iz = 0 is the surface layer.
    int node(int ix, int iy, int iz) const;

    geom::Rect cell_rect(int ix, int iy) const;
    geom::Rect area() const { return area_; }

    /// Surface cells whose rect overlaps `r`, as (node id, overlap area um^2).
    std::vector<std::pair<int, double>> surface_overlap(const geom::Rect& r) const;

    /// The assembled RC network (node ids as from node()); ground (-1) holds
    /// the backside contact when the profile is backside-grounded.
    const mor::RcNetwork& network() const { return net_; }
    mor::RcNetwork& network() { return net_; }

    /// Appends a new node to the network and returns its id (used by
    /// extractors for contact/well port nodes).
    int add_aux_node();

    /// The generated edge coordinates (for tests).
    const std::vector<double>& x_edges() const { return xe_; }
    const std::vector<double>& y_edges() const { return ye_; }

private:
    void build(const tech::DopingProfile& profile);

    geom::Rect area_;
    std::vector<double> xe_, ye_; // lateral cell edges
    std::vector<double> zt_;      // slab thicknesses
    std::vector<double> zc_;      // slab centre depths
    bool backside_grounded_ = false;
    mor::RcNetwork net_;
};

/// Builds a graded 1-D edge vector covering [lo, hi] with `fine` pitch
/// inside [flo, fhi] and geometric growth outside (exposed for testing).
std::vector<double> graded_edges(double lo, double hi, double flo, double fhi,
                                 double fine, double growth, double max_pitch,
                                 int max_cells);

} // namespace snim::substrate
