#include "substrate/ports.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <numeric>

#include "tech/generic180.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace snim::substrate {

std::string tap_port_name(const std::string& net) { return net + "!sub"; }
std::string well_port_name(const std::string& net) { return net + "!well"; }

std::vector<TapCluster> cluster_taps(const std::vector<layout::Shape>& shapes,
                                     const layout::ExtractedNets& nets,
                                     const tech::Technology& tech,
                                     double cut_pitch) {
    SNIM_ASSERT(shapes.size() == nets.shape_net.size(), "shapes/nets size mismatch");
    (void)tech;

    // Collect tap shapes per net.
    std::map<int, std::vector<size_t>> taps_by_net;
    for (size_t i = 0; i < shapes.size(); ++i) {
        if (shapes[i].layer != tech::layers::kSubTap) continue;
        const int net = nets.shape_net[i];
        if (net < 0) continue;
        taps_by_net[net].push_back(i);
    }

    std::vector<TapCluster> out;
    for (const auto& [net, indices] : taps_by_net) {
        // Union-find over touching tap shapes (tolerant: inflate 0.5 um so
        // ring corners connect).
        std::vector<size_t> parent(indices.size());
        std::iota(parent.begin(), parent.end(), 0);
        std::function<size_t(size_t)> find = [&](size_t x) {
            while (parent[x] != x) {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            return x;
        };
        for (size_t a = 0; a < indices.size(); ++a)
            for (size_t b = a + 1; b < indices.size(); ++b)
                if (shapes[indices[a]].rect.inflated(0.5).touches(shapes[indices[b]].rect))
                    parent[find(a)] = find(b);

        std::map<size_t, TapCluster> clusters;
        for (size_t k = 0; k < indices.size(); ++k) {
            auto& c = clusters[find(k)];
            c.net = net;
            c.region.add(shapes[indices[k]].rect);
            c.cuts += std::max(
                1.0, shapes[indices[k]].rect.area() / (cut_pitch * cut_pitch));
            c.shape_indices.push_back(indices[k]);
        }

        // Deterministic order: by cluster bbox (x0, y0).
        std::vector<TapCluster> list;
        for (auto& [root, c] : clusters) list.push_back(std::move(c));
        std::sort(list.begin(), list.end(), [](const TapCluster& a, const TapCluster& b) {
            const auto ba = a.region.bbox();
            const auto bb = b.region.bbox();
            return std::tie(ba.x0, ba.y0) < std::tie(bb.x0, bb.y0);
        });
        const std::string& net_name = nets.net_names[static_cast<size_t>(net)];
        for (size_t k = 0; k < list.size(); ++k) {
            list[k].name = (list.size() == 1)
                               ? tap_port_name(net_name)
                               : tap_port_name(net_name) + std::to_string(k);
            out.push_back(std::move(list[k]));
        }
    }
    return out;
}

std::vector<PortSpec> ports_from_layout(const std::vector<layout::Shape>& shapes,
                                        const layout::ExtractedNets& nets,
                                        const std::vector<layout::Label>& labels,
                                        const tech::Technology& tech,
                                        const PortsFromLayoutOptions& opt) {
    double tap_res = opt.tap_res_per_cut;
    if (tap_res <= 0) {
        const tech::Layer* tap = tech.find_layer(tech::layers::kSubTap);
        tap_res = tap ? tap->via_res : 6.0;
    }

    std::vector<PortSpec> out;
    for (auto& cluster : cluster_taps(shapes, nets, tech, opt.cut_pitch)) {
        PortSpec spec;
        spec.name = cluster.name;
        spec.region = std::move(cluster.region);
        spec.kind = PortKind::Resistive;
        spec.contact_resistance = tap_res / cluster.cuts;
        out.push_back(std::move(spec));
    }

    // --- n-wells: capacitive ports named from a label inside the well ----
    const tech::Layer* nwell = tech.find_layer(tech::layers::kNWell);
    if (nwell) {
        std::map<std::string, geom::Region> wells;
        for (const auto& s : shapes) {
            if (s.layer != tech::layers::kNWell) continue;
            std::string owner = "nwell";
            for (const auto& l : labels) {
                if (l.layer == tech::layers::kNWell && s.rect.contains(l.pos)) {
                    owner = l.text;
                    break;
                }
            }
            wells[owner].add(s.rect);
        }
        for (auto& [name, region] : wells) {
            PortSpec spec;
            spec.name = well_port_name(name);
            spec.region = std::move(region);
            spec.kind = PortKind::Capacitive;
            spec.cap_per_area = nwell->well_cap_area;
            out.push_back(std::move(spec));
        }
    }
    return out;
}

} // namespace snim::substrate
