// Closed-form substrate coupling estimates used to validate the FDM
// extractor (classic spreading-resistance formulas for contacts on a
// half-space of uniform resistivity).
#pragma once

namespace snim::substrate {

/// Spreading resistance of a disc contact of radius `a_um` on a uniform
/// half-space of resistivity `rho_ohm_cm`:  R = rho / (4 a).
double disc_spreading_resistance(double rho_ohm_cm, double a_um);

/// Equivalent disc radius of a rectangular contact (area-equivalent).
double equivalent_disc_radius(double w_um, double h_um);

/// Approximate two-contact transfer: the voltage divider from a unit
/// voltage on contact 1 to the open-circuit potential at distance `d_um`
/// (point-probe):  v(d)/v(contact) = (2 a / (pi d)) for d >> a.
double potential_ratio_at_distance(double a_um, double d_um);

/// Approximate resistance between two identical disc contacts separated by
/// d (centre-centre):  R12 ~ rho/(2a) - rho/(pi d).
double two_contact_resistance(double rho_ohm_cm, double a_um, double d_um);

} // namespace snim::substrate
