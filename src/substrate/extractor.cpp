#include "substrate/extractor.hpp"

#include <cmath>

#include "obs/certify.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace snim::substrate {

int SubstrateModel::port_index(const std::string& name) const {
    for (size_t i = 0; i < port_names.size(); ++i)
        if (equals_nocase(port_names[i], name)) return static_cast<int>(i);
    return -1;
}

SubstrateModel extract_substrate(const geom::Rect& area,
                                 const tech::DopingProfile& profile,
                                 const std::vector<PortSpec>& ports,
                                 const ExtractOptions& opt) {
    SNIM_ASSERT(!ports.empty(), "substrate extraction needs at least one port");
    // Always times (not just when obs is on): extract_seconds is a public
    // result field that predates the registry and stays populated.
    obs::ScopedTimer obs_timer("flow/substrate_extract", obs::Timing::Always,
                               obs::Rss::Track);

    Mesh mesh(area, profile, opt.mesh);

    SubstrateModel out;
    out.mesh_node_count = mesh.node_count();
    if (obs::enabled()) {
        obs::record_value("substrate/mesh_nodes", static_cast<double>(mesh.node_count()));
        obs::count("substrate/ports", ports.size());
        // Mesh footprint: the assembled RC network dominates (edge vectors
        // are O(nx + ny)); this is what peak-RSS deltas attribute to here.
        const auto& net = mesh.network();
        obs::count("substrate/mesh_bytes",
                   (net.conductances.size() + net.capacitances.size()) *
                       sizeof(mor::RcNetwork::Elem));
    }

    std::vector<int> port_nodes;
    for (const auto& spec : ports) {
        SNIM_ASSERT(!spec.name.empty(), "substrate port needs a name");
        SNIM_ASSERT(!spec.region.empty(), "substrate port '%s' has no footprint",
                    spec.name.c_str());
        const int pnode = mesh.add_aux_node();
        port_nodes.push_back(pnode);
        out.port_names.push_back(spec.name);

        // Collect all overlapped surface cells across the region's rects,
        // merging duplicates (cells covered by several rects).
        std::vector<std::pair<int, double>> cover;
        double total_area = 0.0;
        for (const auto& r : spec.region.rects()) {
            for (auto [node, a] : mesh.surface_overlap(r)) {
                bool merged = false;
                for (auto& [n2, a2] : cover)
                    if (n2 == node) {
                        a2 += a;
                        merged = true;
                        break;
                    }
                if (!merged) cover.emplace_back(node, a);
                total_area += a;
            }
        }
        if (cover.empty())
            raise("substrate port '%s' does not overlap the meshed area",
                  spec.name.c_str());

        switch (spec.kind) {
            case PortKind::Resistive: {
                SNIM_ASSERT(spec.contact_resistance > 0,
                            "port '%s': contact resistance must be positive",
                            spec.name.c_str());
                // Total contact conductance distributed by covered area.
                const double gtot = 1.0 / spec.contact_resistance;
                for (auto [node, a] : cover)
                    mesh.network().add_g(pnode, node, gtot * a / total_area);
                break;
            }
            case PortKind::Capacitive: {
                SNIM_ASSERT(spec.cap_per_area > 0, "port '%s': needs cap_per_area",
                            spec.name.c_str());
                for (auto [node, a] : cover)
                    mesh.network().add_c(pnode, node, spec.cap_per_area * a);
                break;
            }
            case PortKind::Probe: {
                // Stiff link: far above any substrate conductance so the
                // probe tracks the surface potential exactly, far below the
                // solver's pivot range.
                const double gprobe = 10.0; // 0.1 ohm
                for (auto [node, a] : cover)
                    mesh.network().add_g(pnode, node, gprobe * a / total_area);
                break;
            }
        }
    }

    // Schur reduction via CG solves: exact to solver tolerance and immune
    // to the fill-in explosion of node elimination on 3-D meshes.
    try {
        out.reduced = mor::reduce_by_solve(mesh.network(), port_nodes);
    } catch (const Error& e) {
        if (!opt.unreduced_fallback) throw;
        // Graceful degradation: stitch the full mesh network in instead of
        // killing the flow.  Exact, just larger and slower to simulate.
        log_warn("substrate: reduction failed (%s); falling back to the "
                 "unreduced mesh network (%zu nodes)",
                 e.what(), mesh.network().node_count);
        obs::count("substrate/mor_fallbacks");
        out.reduced = mor::ports_first(mesh.network(), port_nodes);
        out.mor_fallback = true;
    }

    // Accuracy-budget probe: how much port admittance the reduction lost,
    // measured against the still-live unreduced mesh network.  Observability
    // only — the model itself is unaffected.
    if (obs::enabled() && !out.mor_fallback && opt.mor_probes > 0) {
        const double rel = mor::probe_reduction_error(
            mesh.network(), out.reduced, port_nodes, opt.mor_probes);
        const double rel_db =
            rel > 0.0 ? 20.0 * std::log10(rel) : -400.0; // exact -> floor
        obs::record_value("mor/reduction_error_db", rel_db);
        obs::budget_update("mor/reduction", rel, opt.mor_error_max, "1",
                           /*higher_is_worse=*/true,
                           format("%d probes", opt.mor_probes));
        log_info("substrate: reduction-error probe %.1f dB over %d excitations",
                 rel_db, opt.mor_probes);
    }
    out.extract_seconds = obs_timer.stop();
    log_info("substrate: %zu mesh nodes -> %zu ports in %.2fs%s",
             out.mesh_node_count, out.port_names.size(), out.extract_seconds,
             out.mor_fallback ? " (unreduced fallback)" : "");
    return out;
}

} // namespace snim::substrate
