// Substrate extractor: chip area + doping profile + port footprints in,
// reduced port-level RC macromodel out (the "substrate model" box of the
// paper's Figure 2).
#pragma once

#include <string>
#include <vector>

#include "geom/polygon.hpp"
#include "mor/elimination.hpp"
#include "substrate/mesh.hpp"

namespace snim::substrate {

/// How a circuit node touches the substrate surface.
enum class PortKind {
    /// Ohmic contact (p+ substrate tap): resistance per cut / per area.
    Resistive,
    /// Junction / dielectric interface (n-well, inductor metal): C per area.
    Capacitive,
    /// Direct probe of the surface potential (no contact impedance); used
    /// for sensing the local substrate voltage under a device back-gate.
    Probe,
};

struct PortSpec {
    std::string name;       // circuit node this port exposes
    geom::Region region;    // surface footprint [um]
    PortKind kind = PortKind::Resistive;
    /// Resistive: total contact resistance spread over the footprint [ohm].
    double contact_resistance = 5.0;
    /// Capacitive: capacitance per area [F/um^2].
    double cap_per_area = 0.0;
};

struct ExtractOptions {
    MeshOptions mesh;
    /// Drop tolerance handed to the reducer (0 keeps the model exact).
    double drop_tol = 0.0;
    /// When the CG-based reduction fails, degrade to the unreduced mesh
    /// network (ports renumbered first) instead of aborting the flow: the
    /// stitched model is larger and slower but exact.  OFF propagates the
    /// reduction error.
    bool unreduced_fallback = true;
    /// Reduction-error probes for the accuracy budget: after a successful
    /// reduction, drive reduced and unreduced networks with this many random
    /// port excitations and ledger the worst relative port-current error as
    /// budget stage "mor/reduction" (see mor::probe_reduction_error).  Runs
    /// only while obs is enabled; 0 disables.
    int mor_probes = 3;
    /// Accuracy budget for the probe error (relative port-current error; the
    /// ledger reports the margin against it in dB).
    double mor_error_max = 1e-6;
};

struct SubstrateModel {
    /// Reduced network; node i is port i.
    mor::RcNetwork reduced;
    std::vector<std::string> port_names;
    size_t mesh_node_count = 0;
    double extract_seconds = 0.0;
    /// True when the reduction failed and `reduced` holds the unreduced
    /// mesh network instead (see ExtractOptions::unreduced_fallback).
    bool mor_fallback = false;

    int port_index(const std::string& name) const;
};

/// Runs the extraction.  `area` is the chip outline in um (margin is added
/// by the mesher).  Port regions outside the meshed area are an error.
SubstrateModel extract_substrate(const geom::Rect& area,
                                 const tech::DopingProfile& profile,
                                 const std::vector<PortSpec>& ports,
                                 const ExtractOptions& opt = {});

} // namespace snim::substrate
