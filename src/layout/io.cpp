#include "layout/io.hpp"

#include <cstdio>
#include <memory>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace snim::layout {

std::string orient_name(geom::Orient o) {
    switch (o) {
        case geom::Orient::R0: return "R0";
        case geom::Orient::R90: return "R90";
        case geom::Orient::R180: return "R180";
        case geom::Orient::R270: return "R270";
        case geom::Orient::MX: return "MX";
        case geom::Orient::MY: return "MY";
        case geom::Orient::MX90: return "MX90";
        case geom::Orient::MY90: return "MY90";
    }
    return "R0";
}

geom::Orient orient_from_name(const std::string& name) {
    for (auto o : {geom::Orient::R0, geom::Orient::R90, geom::Orient::R180,
                   geom::Orient::R270, geom::Orient::MX, geom::Orient::MY,
                   geom::Orient::MX90, geom::Orient::MY90}) {
        if (equals_nocase(orient_name(o), name)) return o;
    }
    raise("unknown orientation '%s'", name.c_str());
}

std::string write_layout(const Layout& layout) {
    std::string out = format("layout %s\n", layout.top_name().c_str());
    for (const auto& c : layout.cells()) {
        out += format("cell %s\n", c.name().c_str());
        for (const auto& s : c.shapes())
            out += format("  rect %s %.6g %.6g %.6g %.6g\n", s.layer.c_str(), s.rect.x0,
                          s.rect.y0, s.rect.x1, s.rect.y1);
        for (const auto& l : c.labels())
            out += format("  label %s %.6g %.6g %s\n", l.layer.c_str(), l.pos.x, l.pos.y,
                          l.text.c_str());
        for (const auto& i : c.instances())
            out += format("  inst %s %.6g %.6g %s\n", i.cell_name.c_str(), i.transform.dx,
                          i.transform.dy, orient_name(i.transform.orient).c_str());
        out += "end\n";
    }
    return out;
}

Layout parse_layout(const std::string& text) {
    Layout* layout = nullptr;
    // Deferred construction: the first line names the top cell.
    std::unique_ptr<Layout> holder;
    Cell* cur = nullptr;
    int lineno = 0;
    for (const auto& raw : split_keep(text, '\n')) {
        ++lineno;
        const std::string line = trim(raw);
        if (line.empty() || line[0] == '#') continue;
        auto toks = split(line);
        const std::string& cmd = toks[0];
        auto need = [&](size_t k) {
            if (toks.size() < k) raise("layout parse error line %d: too few fields", lineno);
        };
        if (cmd == "layout") {
            need(2);
            holder = std::make_unique<Layout>(toks[1]);
            layout = holder.get();
        } else if (cmd == "cell") {
            need(2);
            if (!layout) raise("layout parse error line %d: 'cell' before 'layout'", lineno);
            cur = &layout->cell(toks[1]);
        } else if (cmd == "rect") {
            need(6);
            if (!cur) raise("layout parse error line %d: 'rect' outside cell", lineno);
            cur->add_rect(toks[1],
                          geom::Rect(parse_spice_number(toks[2]), parse_spice_number(toks[3]),
                                     parse_spice_number(toks[4]), parse_spice_number(toks[5])));
        } else if (cmd == "label") {
            need(5);
            if (!cur) raise("layout parse error line %d: 'label' outside cell", lineno);
            cur->add_label(toks[4], toks[1],
                           {parse_spice_number(toks[2]), parse_spice_number(toks[3])});
        } else if (cmd == "inst") {
            need(5);
            if (!cur) raise("layout parse error line %d: 'inst' outside cell", lineno);
            geom::Transform t;
            t.dx = parse_spice_number(toks[2]);
            t.dy = parse_spice_number(toks[3]);
            t.orient = orient_from_name(toks[4]);
            cur->add_instance(toks[1], t);
        } else if (cmd == "end") {
            cur = nullptr;
        } else {
            raise("layout parse error line %d: unknown command '%s'", lineno, cmd.c_str());
        }
    }
    if (!layout) raise("layout text missing 'layout' header");
    return std::move(*holder);
}

void save_layout(const Layout& layout, const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) raise("cannot open '%s' for writing", path.c_str());
    const std::string s = write_layout(layout);
    const size_t n = std::fwrite(s.data(), 1, s.size(), f);
    std::fclose(f);
    if (n != s.size()) raise("short write to '%s'", path.c_str());
}

Layout load_layout(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "r");
    if (!f) raise("cannot open '%s'", path.c_str());
    std::string text;
    char buf[4096];
    size_t got;
    while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, got);
    std::fclose(f);
    return parse_layout(text);
}

} // namespace snim::layout
