// Layout database: cells holding rectangles and labels on named layers,
// with transformed cell instances.  This is the "layout" input of the
// paper's Figure-2 flow.
#pragma once

#include <string>
#include <vector>

#include "geom/rect.hpp"
#include "geom/transform.hpp"

namespace snim::layout {

struct Shape {
    std::string layer;
    geom::Rect rect;
};

/// Text label attaching a net name to the shape under `pos` on `layer`.
struct Label {
    std::string text;
    std::string layer;
    geom::Point pos;
};

class Cell {
public:
    explicit Cell(std::string name) : name_(std::move(name)) {}

    const std::string& name() const { return name_; }

    void add_rect(const std::string& layer, const geom::Rect& r);
    void add_rects(const std::string& layer, const std::vector<geom::Rect>& rects);
    void add_label(const std::string& text, const std::string& layer,
                   const geom::Point& pos);
    void add_instance(const std::string& cell_name, const geom::Transform& t);

    const std::vector<Shape>& shapes() const { return shapes_; }
    const std::vector<Label>& labels() const { return labels_; }

    struct Instance {
        std::string cell_name;
        geom::Transform transform;
    };
    const std::vector<Instance>& instances() const { return instances_; }

private:
    std::string name_;
    std::vector<Shape> shapes_;
    std::vector<Label> labels_;
    std::vector<Instance> instances_;
};

class Layout {
public:
    explicit Layout(std::string top_name);

    const std::string& top_name() const { return top_name_; }
    Cell& top() { return cell(top_name_); }
    const Cell& top() const;

    /// Get-or-create a cell.
    Cell& cell(const std::string& name);
    const Cell* find_cell(const std::string& name) const;
    const std::vector<Cell>& cells() const { return cells_; }

    /// Flattened shapes/labels of the top cell (instances resolved
    /// recursively; throws on missing cells or instance cycles).
    std::vector<Shape> flatten_shapes() const;
    std::vector<Label> flatten_labels() const;

    /// Bounding box of the flattened top cell.
    geom::Rect bbox() const;

    /// Shape statistics per layer (for run reports).
    std::vector<std::pair<std::string, size_t>> layer_histogram() const;

private:
    void flatten_into(const Cell& c, const geom::Transform& t, int depth,
                      std::vector<Shape>* shapes, std::vector<Label>* labels) const;

    std::string top_name_;
    std::vector<Cell> cells_;
};

} // namespace snim::layout
