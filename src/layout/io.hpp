// Plain-text layout serialisation (a GDS substitute the repo can diff):
//
//   layout TOPCELL
//   cell NAME
//     rect LAYER x0 y0 x1 y1
//     label LAYER x y TEXT
//     inst CELL dx dy ORIENT
//   end
#pragma once

#include <string>

#include "layout/layout.hpp"

namespace snim::layout {

std::string write_layout(const Layout& layout);
Layout parse_layout(const std::string& text);

void save_layout(const Layout& layout, const std::string& path);
Layout load_layout(const std::string& path);

std::string orient_name(geom::Orient o);
geom::Orient orient_from_name(const std::string& name);

} // namespace snim::layout
