#include "layout/layout.hpp"

#include <algorithm>
#include <map>

#include "util/error.hpp"

namespace snim::layout {

void Cell::add_rect(const std::string& layer, const geom::Rect& r) {
    SNIM_ASSERT(!layer.empty(), "shape needs a layer");
    SNIM_ASSERT(!r.empty(), "cell '%s': empty rect on '%s'", name_.c_str(),
                layer.c_str());
    shapes_.push_back({layer, r});
}

void Cell::add_rects(const std::string& layer, const std::vector<geom::Rect>& rects) {
    for (const auto& r : rects) add_rect(layer, r);
}

void Cell::add_label(const std::string& text, const std::string& layer,
                     const geom::Point& pos) {
    SNIM_ASSERT(!text.empty(), "empty label");
    labels_.push_back({text, layer, pos});
}

void Cell::add_instance(const std::string& cell_name, const geom::Transform& t) {
    SNIM_ASSERT(!cell_name.empty(), "instance needs a cell name");
    SNIM_ASSERT(cell_name != name_, "cell '%s' cannot instantiate itself", name_.c_str());
    instances_.push_back({cell_name, t});
}

Layout::Layout(std::string top_name) : top_name_(std::move(top_name)) {
    cells_.emplace_back(top_name_);
}

const Cell& Layout::top() const {
    const Cell* c = find_cell(top_name_);
    SNIM_ASSERT(c != nullptr, "missing top cell");
    return *c;
}

Cell& Layout::cell(const std::string& name) {
    for (auto& c : cells_)
        if (c.name() == name) return c;
    cells_.emplace_back(name);
    return cells_.back();
}

const Cell* Layout::find_cell(const std::string& name) const {
    for (const auto& c : cells_)
        if (c.name() == name) return &c;
    return nullptr;
}

void Layout::flatten_into(const Cell& c, const geom::Transform& t, int depth,
                          std::vector<Shape>* shapes, std::vector<Label>* labels) const {
    if (depth > 64) raise("instance recursion too deep (cycle through '%s'?)",
                          c.name().c_str());
    if (shapes)
        for (const auto& s : c.shapes()) shapes->push_back({s.layer, t.apply(s.rect)});
    if (labels)
        for (const auto& l : c.labels())
            labels->push_back({l.text, l.layer, t.apply(l.pos)});
    for (const auto& inst : c.instances()) {
        const Cell* child = find_cell(inst.cell_name);
        if (!child) raise("instance of unknown cell '%s'", inst.cell_name.c_str());
        flatten_into(*child, t.compose(inst.transform), depth + 1, shapes, labels);
    }
}

std::vector<Shape> Layout::flatten_shapes() const {
    std::vector<Shape> out;
    flatten_into(top(), geom::Transform{}, 0, &out, nullptr);
    return out;
}

std::vector<Label> Layout::flatten_labels() const {
    std::vector<Label> out;
    flatten_into(top(), geom::Transform{}, 0, nullptr, &out);
    return out;
}

geom::Rect Layout::bbox() const {
    geom::Rect b;
    for (const auto& s : flatten_shapes()) b = b.bounding_union(s.rect);
    return b;
}

std::vector<std::pair<std::string, size_t>> Layout::layer_histogram() const {
    std::map<std::string, size_t> hist;
    for (const auto& s : flatten_shapes()) ++hist[s.layer];
    return {hist.begin(), hist.end()};
}

} // namespace snim::layout
