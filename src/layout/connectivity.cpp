#include "layout/connectivity.hpp"

#include <numeric>
#include <unordered_map>

#include "geom/grid_index.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace snim::layout {

namespace {

class UnionFind {
public:
    explicit UnionFind(size_t n) : parent_(n) {
        std::iota(parent_.begin(), parent_.end(), 0);
    }
    size_t find(size_t x) {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];
            x = parent_[x];
        }
        return x;
    }
    void unite(size_t a, size_t b) { parent_[find(a)] = find(b); }

private:
    std::vector<size_t> parent_;
};

} // namespace

int ExtractedNets::find_net(const std::string& name) const {
    for (size_t i = 0; i < net_names.size(); ++i)
        if (equals_nocase(net_names[i], name)) return static_cast<int>(i);
    return -1;
}

ExtractedNets extract_connectivity(const std::vector<Shape>& shapes,
                                   const std::vector<Label>& labels,
                                   const tech::Technology& tech) {
    const size_t n = shapes.size();
    UnionFind uf(n);

    // Index shapes per conducting layer.
    std::unordered_map<std::string, geom::GridIndex> index;
    std::unordered_map<std::string, std::vector<size_t>> by_layer;
    for (size_t i = 0; i < n; ++i) {
        const tech::Layer* layer = tech.find_layer(shapes[i].layer);
        if (!layer) continue;
        if (layer->kind != tech::LayerKind::Routing) continue;
        auto [it, inserted] = index.try_emplace(shapes[i].layer, 5.0);
        it->second.insert(i, shapes[i].rect);
        by_layer[shapes[i].layer].push_back(i);
    }

    // Same-layer touching shapes merge.
    for (size_t i = 0; i < n; ++i) {
        auto it = index.find(shapes[i].layer);
        if (it == index.end()) continue;
        const tech::Layer* layer = tech.find_layer(shapes[i].layer);
        if (!layer || layer->kind != tech::LayerKind::Routing) continue;
        for (size_t j : it->second.candidates(shapes[i].rect)) {
            if (j <= i) continue;
            if (shapes[i].rect.touches(shapes[j].rect)) uf.unite(i, j);
        }
    }

    // Vias/contacts merge their bottom and top layers where the cut overlaps.
    for (size_t i = 0; i < n; ++i) {
        const tech::Layer* layer = tech.find_layer(shapes[i].layer);
        if (!layer) continue;
        if (layer->kind != tech::LayerKind::Via && layer->kind != tech::LayerKind::Contact)
            continue;
        for (const std::string& side : {layer->connects_bottom, layer->connects_top}) {
            if (side.empty() || side == "substrate") continue;
            auto it = index.find(side);
            if (it == index.end()) continue;
            size_t first_hit = SIZE_MAX;
            for (size_t j : it->second.candidates(shapes[i].rect)) {
                if (!shapes[i].rect.touches(shapes[j].rect)) continue;
                if (first_hit == SIZE_MAX) first_hit = j;
                uf.unite(i, j); // the cut itself joins the nets of both sides
            }
        }
    }

    // Assign compact net ids to conducting shapes (vias included so the
    // interconnect extractor can locate them on a net).
    ExtractedNets out;
    out.shape_net.assign(n, -1);
    std::unordered_map<size_t, int> root_to_net;
    for (size_t i = 0; i < n; ++i) {
        const tech::Layer* layer = tech.find_layer(shapes[i].layer);
        if (!layer) continue;
        const bool conducting = layer->kind == tech::LayerKind::Routing ||
                                layer->kind == tech::LayerKind::Via ||
                                layer->kind == tech::LayerKind::Contact;
        if (!conducting) continue;
        const size_t root = uf.find(i);
        auto [it, inserted] = root_to_net.try_emplace(root, static_cast<int>(out.net_count));
        if (inserted) ++out.net_count;
        out.shape_net[i] = it->second;
    }

    // Name nets from labels: a label names the net of a shape on its layer
    // containing the label point.
    out.net_names.resize(out.net_count);
    for (const auto& label : labels) {
        auto it = by_layer.find(label.layer);
        if (it == by_layer.end()) continue;
        for (size_t i : it->second) {
            if (!shapes[i].rect.contains(label.pos)) continue;
            const int net = out.shape_net[i];
            if (net < 0) continue;
            auto& name = out.net_names[static_cast<size_t>(net)];
            if (!name.empty() && !equals_nocase(name, label.text))
                raise("net has two labels: '%s' and '%s'", name.c_str(),
                      label.text.c_str());
            name = label.text;
            break;
        }
    }
    for (size_t k = 0; k < out.net_count; ++k)
        if (out.net_names[k].empty()) out.net_names[k] = format("net%zu", k);
    return out;
}

} // namespace snim::layout
