// Connectivity (net) extraction over flattened layout shapes: the
// DIVA-style LVS step that groups touching shapes into nets and names them
// from labels.
#pragma once

#include <string>
#include <vector>

#include "layout/layout.hpp"
#include "tech/technology.hpp"

namespace snim::layout {

struct ExtractedNets {
    /// Net id per flattened shape; -1 for shapes on non-conducting layers.
    std::vector<int> shape_net;
    size_t net_count = 0;
    /// Net names: from labels where present, otherwise "net<k>".
    std::vector<std::string> net_names;

    /// Net id by name; -1 when absent.
    int find_net(const std::string& name) const;
};

/// Extracts connectivity.  Conducting layers are Routing layers; Via and
/// Contact layers merge the nets of their connects_bottom/connects_top
/// layers where the cut overlaps both.  Substrate-tap contacts (those whose
/// connects_bottom is "substrate") only conduct to their top layer here;
/// the resistive path into silicon belongs to the substrate extractor.
ExtractedNets extract_connectivity(const std::vector<Shape>& shapes,
                                   const std::vector<Label>& labels,
                                   const tech::Technology& tech);

} // namespace snim::layout
