// The paper's victim circuit: a ~3 GHz LC-tank VCO in the generic 0.18 um
// technology.  NMOS/PMOS cross-coupled pair, on-chip inductor (drawn in top
// metal, series inductance as a schematic element), accumulation-mode NMOS
// varactor, substrate injection contact (SUB), MOS ground ring, outer guard
// ring, pad frame and the resistive on-chip ground strap that the paper
// identifies as the dominant noise entry.
#pragma once

#include "core/impact_flow.hpp"
#include "core/impact_model.hpp"

namespace snim::testcases {

struct VcoOptions {
    /// Width of the on-chip ground strap serpentine [um]; Figure 10
    /// doubles this (halving the strap resistance).
    double ground_strap_width = 1.0;
    /// Tank element values.
    double l_tank = 2.0e-9;
    double l_series_res = 3.2;
    double c_fixed = 1.5e-12;   // per side, to the on-chip ground
    double varactor_area = 150.0; // um^2 per side
    /// Cross-coupled pair widths [um].
    double nmos_w = 29.0;
    double pmos_w = 85.0;
    /// Tuning voltage applied at the board [V].
    double vtune = 0.9;
    double vdd = 1.8;
    /// Startup kick current [A].
    double kick = 1.0e-3;
    substrate::MeshOptions mesh;
};

struct VcoTestcase {
    tech::Technology tech;
    layout::Layout layout;
    core::FlowInputs inputs;

    // Node names.
    static constexpr const char* kOutP = "outp";
    static constexpr const char* kOutN = "outn";
    static constexpr const char* kGroundNode = "vgnd_dev"; // on-chip ground at devices
    static constexpr const char* kBulkNmos = "bulk_nmos";
    static constexpr const char* kVdd = "vdd";
    static constexpr const char* kVtune = "vtune";
    static constexpr const char* kIndP = "indp";
    static constexpr const char* kIndN = "indn";
    static constexpr const char* kOutBoard = "out_board";
    static constexpr const char* kNoiseSource = "vsub";
    static constexpr const char* kVtuneSource = "vtune_src";
};

VcoTestcase build_vco(const VcoOptions& opt = {});

/// Runs the full Figure-2 flow (consumes the testcase).
core::ImpactModel build_model(VcoTestcase&& v, const core::FlowOptions& opt = {});

/// Oscillator measurement settings tuned for this VCO (differential tank
/// probe, 10 ps step).
rf::OscOptions vco_osc_options();

/// The noise entry points of the paper's Figure 9 analysis.
std::vector<core::NoiseEntry> vco_noise_entries();

/// Default flow options with a substrate mesh sized for bench runtimes.
core::FlowOptions vco_flow_options();

} // namespace snim::testcases
