#include "testcases/nmos_structure.hpp"

#include "circuit/mosfet.hpp"
#include "circuit/passives.hpp"
#include "circuit/sources.hpp"
#include "geom/polygon.hpp"
#include "tech/generic180.hpp"
#include "util/error.hpp"

namespace snim::testcases {

namespace L = snim::tech::layers;
using geom::Rect;

NmosStructure build_nmos_structure(const NmosStructureOptions& opt) {
    NmosStructure s{tech::generic180(), layout::Layout("nmos_structure"), {}};
    layout::Cell& top = s.layout.top();

    // ---------------- layout ------------------------------------------------
    // Device footprint (active) and the MOS ground ring right around it.
    const Rect device(0, 0, 30, 12);
    top.add_rect(L::kActive, device);
    const Rect mosgr_outer(-6, -6, 36, 18);
    top.add_rects(L::kSubTap, geom::make_ring(mosgr_outer, 4.0));
    top.add_rects(L::kMetal[0], geom::make_ring(mosgr_outer, 4.0));

    // Outer guard ring around the complete structure.
    const Rect gr_outer(-100, -80, 260, 100);
    top.add_rects(L::kSubTap, geom::make_ring(gr_outer, 6.0));
    top.add_rects(L::kMetal[0], geom::make_ring(gr_outer, 6.0));

    // Ground pad.
    top.add_rect(L::kMetal[0], Rect(-300, -30, -240, 30));
    top.add_label("vgnd", L::kMetal[0], {-270, 0});

    // Wide strap: pad -> guard ring (low resistance).
    top.add_rect(L::kMetal[0], Rect(-240, -3, -94, 3));

    // Solid source strap on metal2 to its OWN pad and bondwire (a Kelvin
    // connection, as an RF probe provides): the transistor source must not
    // share a return with the noisy guard-ring current or the shared-path
    // bounce re-enters through gm.
    top.add_rect(L::kMetal[1], Rect(-234, -6, 10, -2));
    top.add_rect(L::kMetal[1], Rect(-234, -110, -230, -2));
    top.add_rect(L::kMetal[0], Rect(-290, -140, -230, -80)); // source pad
    top.add_label("vsrc", L::kMetal[0], {-260, -110});
    top.add_rect(L::kVia[0], Rect(-233.5, -105, -230.5, -95)); // to the pad

    // Resistive MOS GR wire: a narrow metal2 serpentine (carrying no DC)
    // grounds the substrate ring.  Its resistance lets the ring ride with
    // the substrate noise -- the paper's "metal resistance" that nearly
    // doubles the back-gate voltage division.
    const double w = opt.ground_wire_width;
    SNIM_ASSERT(w > 0.2 && w < 20.0, "unreasonable ground wire width %g", w);
    top.add_rects(L::kMetal[1], geom::make_serpentine({-240, 24}, 180.0, w, 4.0, 8));
    top.add_rect(L::kMetal[1], Rect(-61, 16.5, -60.2, 52.8)); // tail down
    top.add_rect(L::kMetal[1], Rect(-60.2, 16.5, -3.5, 17.5)); // tail to ring
    top.add_rect(L::kVia[0], Rect(-5.8, 16.7, -4.0, 17.3));   // onto MOS GR metal
    top.add_rect(L::kVia[0], Rect(-240.4, 24.2, -239.6, 24.2 + std::min(w, 0.6)));

    // Substrate injection contact (SUB) outside the guard ring, with its
    // own metal patch, wire and probe pad.
    top.add_rect(L::kSubTap, Rect(320, 0, 330, 10));
    top.add_rect(L::kMetal[0], Rect(318, -2, 332, 12));
    top.add_rect(L::kMetal[0], Rect(330, 2, 400, 8));
    top.add_rect(L::kMetal[0], Rect(400, -30, 460, 30));
    top.add_label("subinj", L::kMetal[0], {430, 0});

    // ---------------- schematic ---------------------------------------------
    circuit::Netlist& nl = s.inputs.schematic;
    tech::MosModelCard card = s.tech.mos_model("nch");
    circuit::MosGeometry geom;
    geom.w = opt.w_um;
    geom.l = opt.l_um;
    geom.m = opt.parallel;
    nl.add<circuit::Mosfet>(NmosStructure::kMosfet, nl.node(NmosStructure::kOut),
                            nl.node(NmosStructure::kGate),
                            nl.node(NmosStructure::kSourceNode),
                            nl.node(NmosStructure::kBulk), card, geom);

    nl.add<circuit::VSource>(NmosStructure::kGateSource, nl.node(NmosStructure::kGate),
                             circuit::kGround, circuit::Waveform::dc(opt.vgate));
    // Drain bias through an ideal bias tee (large inductor): the output sees
    // only the device's own 1/gds at the noise frequencies, as in the paper.
    nl.add<circuit::VSource>(NmosStructure::kDrainSource, nl.node("vdfeed"),
                             circuit::kGround, circuit::Waveform::dc(opt.vdrain));
    nl.add<circuit::Inductor>("lbias", nl.node(NmosStructure::kOut), nl.node("vdfeed"),
                              10e-3, 1.0);

    // Substrate noise injector: 50-ohm source driving the SUB pad.
    nl.add<circuit::VSource>(NmosStructure::kNoiseSource, nl.node("subdrive"),
                             circuit::kGround, circuit::Waveform::dc(0.0),
                             circuit::AcSpec{1.0, 0.0});
    nl.add<circuit::Resistor>("rsub", nl.node("subdrive"), nl.node("sub_pad"), 50.0);

    // ---------------- pins, ports, package ----------------------------------
    s.inputs.pins = {
        {NmosStructure::kSourceNode, L::kMetal[1], {5, -4}},
        {"gnd_pad", L::kMetal[0], {-270, 0}},
        {"src_pad", L::kMetal[0], {-260, -110}},
        {"sub_pad", L::kMetal[0], {430, 0}},
    };

    substrate::PortSpec bulk;
    bulk.name = NmosStructure::kBulk;
    bulk.kind = substrate::PortKind::Probe;
    bulk.region.add(device);
    s.inputs.substrate_ports.push_back(std::move(bulk));

    package::BondwireSpec gnd_wire;
    gnd_wire.pad_node = "gnd_pad";
    gnd_wire.board_node = "0";
    gnd_wire.inductance = 0.8e-9;
    gnd_wire.resistance = 0.1;
    gnd_wire.pad_cap = 150e-15;
    s.inputs.package.wires.push_back(gnd_wire);
    package::BondwireSpec src_wire = gnd_wire;
    src_wire.pad_node = "src_pad";
    s.inputs.package.wires.push_back(src_wire);

    return s;
}

core::ImpactModel build_model(NmosStructure&& s, const core::FlowOptions& opt) {
    s.inputs.layout = &s.layout;
    s.inputs.tech = &s.tech;
    return core::build_impact_model(std::move(s.inputs), opt);
}

} // namespace snim::testcases
