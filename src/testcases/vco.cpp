#include "testcases/vco.hpp"

#include "circuit/mosfet.hpp"
#include "circuit/passives.hpp"
#include "circuit/sources.hpp"
#include "circuit/varactor.hpp"
#include "geom/polygon.hpp"
#include "tech/generic180.hpp"
#include "util/error.hpp"

namespace snim::testcases {

namespace L = snim::tech::layers;
using geom::Rect;

VcoTestcase build_vco(const VcoOptions& opt) {
    VcoTestcase v{tech::generic180(), layout::Layout("vco"), {}};
    layout::Cell& top = v.layout.top();

    // ===================== layout ==========================================
    // Cross-coupled NMOS pair (back-gates in the common substrate).
    const Rect nmos_active(0, 0, 30, 12);
    top.add_rect(L::kActive, nmos_active);

    // PMOS pair in its own n-well (tied to vdd).
    const Rect pmos_active(0, 40, 60, 52);
    const Rect pmos_well(-5, 35, 65, 57);
    top.add_rect(L::kActive, pmos_active);
    top.add_rect(L::kNWell, pmos_well);
    top.add_label("vdd", L::kNWell, {30, 46});

    // Varactors in a second n-well (tied to vtune).
    const Rect var_active(45, 0, 60, 12);
    const Rect var_well(40, -5, 75, 17);
    top.add_rect(L::kActive, var_active);
    top.add_rect(L::kNWell, var_well);
    top.add_label("vtune", L::kNWell, {57, 6});

    // MOS ground ring tightly around the NMOS pair.
    const Rect mosgr_outer(-10, -10, 36, 18);
    top.add_rects(L::kSubTap, geom::make_ring(mosgr_outer, 2.0));
    top.add_rects(L::kMetal[0], geom::make_ring(mosgr_outer, 2.0));

    // Outer guard ring around the whole VCO.
    const Rect gr_outer(-140, -100, 320, 160);
    top.add_rects(L::kSubTap, geom::make_ring(gr_outer, 6.0));
    top.add_rects(L::kMetal[0], geom::make_ring(gr_outer, 6.0));

    // Ground pad + wide strap to the guard ring.
    top.add_rect(L::kMetal[0], Rect(-320, -30, -260, 30));
    top.add_label("vgnd", L::kMetal[0], {-290, 0});
    top.add_rect(L::kMetal[0], Rect(-260, -3, -134, 3));

    // THE ground strap: pad -> MOS GR on metal2 (crosses the guard ring on a
    // higher layer).  Drawn as a long serpentine, the realistic way a test
    // chip ends up with tens of ohms in its ground return; Figure 10 doubles
    // the width.
    const double w = opt.ground_strap_width;
    SNIM_ASSERT(w >= 0.5 && w <= 4.0, "unreasonable ground strap width %g", w);
    top.add_rects(L::kMetal[1],
                  geom::make_serpentine({-260, 5}, 200.0, w, 5.0, 3));
    top.add_rect(L::kMetal[1], Rect(-61, 15, -59, 17.5)); // tail down
    top.add_rect(L::kMetal[1], Rect(-60, 16.5, -9, 17.8)); // tail to ring
    top.add_rect(L::kVia[0], Rect(-9.9, 17.0, -8.3, 17.6)); // onto MOS GR metal
    top.add_rect(L::kVia[0], Rect(-260.4, 5.2, -259.6, 5.2 + std::min(w - 0.2, 0.6)));

    // Inductor: two C-shaped arms in thick top metal with a gap where the
    // schematic inductance sits; the drawn metal contributes the series
    // wiring resistance and the capacitive footprint over the substrate.
    top.add_rect(L::kMetal[5], Rect(100, -20, 105, 80)); // left vertical
    top.add_rect(L::kMetal[5], Rect(105, 75, 150, 80));  // left horizontal
    top.add_label("outp", L::kMetal[5], {102, 0});
    top.add_rect(L::kMetal[5], Rect(160, 75, 205, 80));  // right horizontal
    top.add_rect(L::kMetal[5], Rect(205, -20, 210, 80)); // right vertical
    top.add_label("outn", L::kMetal[5], {207, 0});

    // vdd pad + metal3 routing down to the PMOS sources.
    top.add_rect(L::kMetal[0], Rect(360, 200, 420, 260));
    top.add_label("vdd", L::kMetal[0], {390, 230});
    top.add_rect(L::kMetal[1], Rect(370, 205, 390, 225));
    top.add_rect(L::kVia[0], Rect(378, 216, 380, 218));
    top.add_rect(L::kVia[1], Rect(378, 211, 380, 213));
    top.add_rect(L::kMetal[2], Rect(26, 206, 390, 214)); // horizontal
    top.add_rect(L::kMetal[2], Rect(26, 57, 34, 214));   // vertical to PMOS

    // vtune pad + metal2 routing to the varactor well contact.
    top.add_rect(L::kMetal[0], Rect(-320, 200, -260, 260));
    top.add_label("vtune", L::kMetal[0], {-290, 230});
    top.add_rect(L::kMetal[1], Rect(-290, 223, 57, 229));  // horizontal
    top.add_rect(L::kMetal[1], Rect(51, 17, 57, 229));     // vertical
    top.add_rect(L::kVia[0], Rect(-289, 224, -288.2, 228));

    // Output pad (AC-coupled on-chip).
    top.add_rect(L::kMetal[0], Rect(360, -160, 420, -100));
    top.add_label("out", L::kMetal[0], {390, -130});

    // Substrate injection contact (SUB) below the guard ring, with its
    // probe pad.
    top.add_rect(L::kSubTap, Rect(0, -180, 10, -170));
    top.add_rect(L::kMetal[0], Rect(-2, -182, 12, -168));
    top.add_rect(L::kMetal[0], Rect(10, -178, 80, -172));
    top.add_rect(L::kMetal[0], Rect(80, -200, 140, -140));
    top.add_label("subinj", L::kMetal[0], {110, -170});

    // ===================== schematic =======================================
    circuit::Netlist& nl = v.inputs.schematic;
    const auto nch = v.tech.mos_model("nch");
    const auto pch = v.tech.mos_model("pch");
    const auto nvar = v.tech.varactor_model("nvar");

    const auto outp = nl.node(VcoTestcase::kOutP);
    const auto outn = nl.node(VcoTestcase::kOutN);
    const auto vgnd = nl.node(VcoTestcase::kGroundNode);
    const auto vdd = nl.node(VcoTestcase::kVdd);
    const auto vtune = nl.node(VcoTestcase::kVtune);
    const auto bulk = nl.node(VcoTestcase::kBulkNmos);

    circuit::MosGeometry ng{.w = opt.nmos_w, .l = 0.18, .m = 1};
    circuit::MosGeometry pg{.w = opt.pmos_w, .l = 0.18, .m = 1};
    nl.add<circuit::Mosfet>("mn1", outp, outn, vgnd, bulk, nch, ng);
    nl.add<circuit::Mosfet>("mn2", outn, outp, vgnd, bulk, nch, ng);
    nl.add<circuit::Mosfet>("mp1", outp, outn, vdd, vdd, pch, pg);
    nl.add<circuit::Mosfet>("mp2", outn, outp, vdd, vdd, pch, pg);

    nl.add<circuit::Inductor>("ltank", nl.node(VcoTestcase::kIndP),
                              nl.node(VcoTestcase::kIndN), opt.l_tank,
                              opt.l_series_res);
    nl.add<circuit::Varactor>("yvar1", outp, vtune, nvar, opt.varactor_area);
    nl.add<circuit::Varactor>("yvar2", outn, vtune, nvar, opt.varactor_area);
    nl.add<circuit::Capacitor>("cfix1", outp, vgnd, opt.c_fixed);
    nl.add<circuit::Capacitor>("cfix2", outn, vgnd, opt.c_fixed);
    // On-chip supply decoupling (typical RF practice).
    nl.add<circuit::Capacitor>("cdecap", vdd, vgnd, 5e-12);

    // Output coupling to the pad.
    nl.add<circuit::Capacitor>("ccouple", outp, nl.node("out_pad"), 100e-15);
    nl.add<circuit::Resistor>("rload", nl.node(VcoTestcase::kOutBoard),
                              circuit::kGround, 50.0);

    // Board-side sources.
    nl.add<circuit::VSource>("vddsrc", nl.node("vdd_board"), circuit::kGround,
                             circuit::Waveform::dc(opt.vdd));
    nl.add<circuit::VSource>(VcoTestcase::kVtuneSource, nl.node("vtune_board"),
                             circuit::kGround, circuit::Waveform::dc(opt.vtune));

    // Substrate noise injector (managed by the analyzer).
    nl.add<circuit::VSource>(VcoTestcase::kNoiseSource, nl.node("subdrive"),
                             circuit::kGround, circuit::Waveform::dc(0.0),
                             circuit::AcSpec{1.0, 0.0});
    nl.add<circuit::Resistor>("rsub", nl.node("subdrive"), nl.node("sub_pad"), 50.0);

    // Startup kick.
    nl.add<circuit::ISource>(
        "ikick", circuit::kGround, outp,
        circuit::Waveform::pwl({{0.0, 0.0}, {50e-12, opt.kick}, {100e-12, 0.0}}));

    // ===================== pins ============================================
    v.inputs.pins = {
        {VcoTestcase::kGroundNode, L::kMetal[0], {13, -9}},
        {"gnd_pad", L::kMetal[0], {-290, 0}},
        {VcoTestcase::kVdd, L::kMetal[2], {30, 60}},
        {"vdd_pad", L::kMetal[0], {390, 230}},
        {VcoTestcase::kVtune, L::kMetal[1], {54, 18}},
        {"vtune_pad", L::kMetal[0], {-290, 230}},
        {VcoTestcase::kOutP, L::kMetal[5], {102, -18}},
        {VcoTestcase::kIndP, L::kMetal[5], {148, 77.5}},
        {VcoTestcase::kOutN, L::kMetal[5], {207, -18}},
        {VcoTestcase::kIndN, L::kMetal[5], {162, 77.5}},
        {"out_pad", L::kMetal[0], {390, -130}},
        {"sub_pad", L::kMetal[0], {110, -170}},
    };

    // ===================== substrate ports ==================================
    {
        substrate::PortSpec bulk_port;
        bulk_port.name = VcoTestcase::kBulkNmos;
        bulk_port.kind = substrate::PortKind::Probe;
        bulk_port.region.add(nmos_active);
        v.inputs.substrate_ports.push_back(std::move(bulk_port));

        substrate::PortSpec pmos_well_port;
        pmos_well_port.name = VcoTestcase::kVdd;
        pmos_well_port.kind = substrate::PortKind::Capacitive;
        pmos_well_port.cap_per_area = v.tech.layer(L::kNWell).well_cap_area;
        pmos_well_port.region.add(pmos_well);
        v.inputs.substrate_ports.push_back(std::move(pmos_well_port));

        substrate::PortSpec var_well_port;
        var_well_port.name = VcoTestcase::kVtune;
        var_well_port.kind = substrate::PortKind::Capacitive;
        var_well_port.cap_per_area = v.tech.layer(L::kNWell).well_cap_area;
        var_well_port.region.add(var_well);
        v.inputs.substrate_ports.push_back(std::move(var_well_port));
    }

    // ===================== package ==========================================
    auto wire = [](const char* pad, const char* board) {
        package::BondwireSpec b;
        b.pad_node = pad;
        b.board_node = board;
        b.inductance = 1.2e-9;
        b.resistance = 0.15;
        b.pad_cap = 120e-15;
        return b;
    };
    v.inputs.package.wires = {
        wire("gnd_pad", "0"),
        wire("vdd_pad", "vdd_board"),
        wire("vtune_pad", "vtune_board"),
        wire("out_pad", VcoTestcase::kOutBoard),
    };
    return v;
}

core::ImpactModel build_model(VcoTestcase&& v, const core::FlowOptions& opt) {
    v.inputs.layout = &v.layout;
    v.inputs.tech = &v.tech;
    return core::build_impact_model(std::move(v.inputs), opt);
}

rf::OscOptions vco_osc_options() {
    rf::OscOptions osc;
    osc.probe_p = VcoTestcase::kOutP;
    osc.probe_n = VcoTestcase::kOutN;
    osc.dt = 10e-12;
    osc.settle = 120e-9;
    osc.capture = 150e-9;
    osc.f_min = 1.5e9;
    osc.f_max = 6e9;
    return osc;
}

std::vector<core::NoiseEntry> vco_noise_entries() {
    // Relative entry coordinates decouple the physical paths: ground bounce
    // is the absolute on-chip ground excursion; every other entry is
    // measured against it so common-mode bounce is attributed to the
    // ground interconnect (the paper's own mechanism description).
    return {
        // Ground interconnect: ablated by SHORTING the ground wiring (the
        // paper's mechanism is the drop over its parasitic resistance).
        {"ground interconnect",
         {VcoTestcase::kGroundNode},
         "",
         {"vgnd!sub0", "vgnd!sub1"},
         {"c:vgnd"},
         {"vgnd#", "tie:vgnd", "touch#"}},
        {"NMOS back-gate",
         {VcoTestcase::kBulkNmos, VcoTestcase::kGroundNode},
         "",
         {VcoTestcase::kBulkNmos},
         {},
         {}},
        {"inductor",
         {VcoTestcase::kOutP, VcoTestcase::kGroundNode},
         VcoTestcase::kVtuneSource,
         {},
         {"c:outp", "c:outn"},
         {}},
        {"PMOS n-well",
         {VcoTestcase::kVdd, VcoTestcase::kGroundNode},
         "vddsrc",
         {VcoTestcase::kVdd},
         {"c:vdd"},
         {}},
        {"varactor n-well",
         {VcoTestcase::kVtune, VcoTestcase::kGroundNode},
         VcoTestcase::kVtuneSource,
         {VcoTestcase::kVtune},
         {"c:vtune"},
         {}},
    };
}

core::FlowOptions vco_flow_options() {
    core::FlowOptions fo;
    // Fine cells over the active core (NMOS pair, MOS GR, varactors) so the
    // back-gate-to-ring potential difference is resolved; graded coarsening
    // towards the pad frame.
    fo.substrate.mesh.focus = geom::Rect(-20, -20, 80, 62);
    fo.substrate.mesh.fine_pitch = 4.0;
    fo.substrate.mesh.growth = 1.5;
    fo.substrate.mesh.max_pitch = 70.0;
    fo.substrate.mesh.margin = 40.0;
    fo.substrate.mesh.z_steps = {0.8, 2.0, 5.0, 12.0, 30.0, 80.0, 120.0};
    fo.surface_patches = 3;
    return fo;
}

} // namespace snim::testcases
