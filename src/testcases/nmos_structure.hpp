// The paper's one-transistor validation vehicle (Figure 4): an RF NMOS
// (four devices in parallel) surrounded by its own ground ring (MOS GR),
// an outer guard ring (GR), a substrate injection contact (SUB) and the
// deliberately resistive metal ground wiring between MOS GR and the
// off-chip ground -- the resistance that almost doubles the substrate-to-
// back-gate voltage division.
#pragma once

#include "core/impact_flow.hpp"
#include "tech/technology.hpp"

namespace snim::testcases {

struct NmosStructureOptions {
    /// Width of the metal wire that grounds the MOS GR ring [um].  The wire
    /// carries no DC (the source has its own solid strap); its resistance
    /// lets the ring ride with the substrate noise, nearly doubling the
    /// back-gate voltage division -- the paper's Figure 3/4 effect.
    double ground_wire_width = 0.8;
    /// Unit transistor geometry (4 in parallel, paper-style RF NMOS).
    double w_um = 60.0;
    double l_um = 0.34;
    int parallel = 4;
    /// Drain bias [V] and initial gate bias [V].
    double vdrain = 1.0;
    double vgate = 1.0;
    substrate::MeshOptions mesh;
};

struct NmosStructure {
    tech::Technology tech;
    layout::Layout layout;
    core::FlowInputs inputs;

    // Node / device names used by benches and tests.
    static constexpr const char* kOut = "out";
    static constexpr const char* kGate = "vg";
    static constexpr const char* kBulk = "bulk_nmos";
    static constexpr const char* kSourceNode = "vgnd_mos";
    static constexpr const char* kSubPort = "subinj!sub";
    static constexpr const char* kNoiseSource = "vsub";
    static constexpr const char* kGateSource = "vvg";
    static constexpr const char* kDrainSource = "vvd";
    static constexpr const char* kMosfet = "m1";
};

/// Builds layout + schematic + pins + ports; feed `inputs` to
/// core::build_impact_model.
NmosStructure build_nmos_structure(const NmosStructureOptions& opt = {});

/// Convenience: runs the full Figure-2 flow on the structure (consumes it).
core::ImpactModel build_model(NmosStructure&& s, const core::FlowOptions& opt = {});

} // namespace snim::testcases
