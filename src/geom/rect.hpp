// Planar geometry primitives.  All layout coordinates are micrometres.
#pragma once

#include <string>
#include <vector>

namespace snim::geom {

struct Point {
    double x = 0.0;
    double y = 0.0;

    Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
    Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
    bool operator==(const Point& o) const { return x == o.x && y == o.y; }
};

/// Axis-aligned rectangle, normalised so x0 <= x1 and y0 <= y1.
struct Rect {
    double x0 = 0.0, y0 = 0.0, x1 = 0.0, y1 = 0.0;

    Rect() = default;
    Rect(double ax0, double ay0, double ax1, double ay1);
    /// Rectangle centred at (cx, cy) with the given width/height.
    static Rect centered(double cx, double cy, double w, double h);

    double width() const { return x1 - x0; }
    double height() const { return y1 - y0; }
    double area() const { return width() * height(); }
    double perimeter() const { return 2.0 * (width() + height()); }
    Point center() const { return {0.5 * (x0 + x1), 0.5 * (y0 + y1)}; }
    bool empty() const { return width() <= 0.0 || height() <= 0.0; }

    bool contains(const Point& p) const;
    bool contains(const Rect& r) const;
    /// Closed-interval overlap test (shared edges count as touching).
    bool touches(const Rect& r) const;
    /// Open-interval overlap test (shared edges do NOT overlap).
    bool overlaps(const Rect& r) const;

    Rect intersection(const Rect& r) const; // empty() if disjoint
    Rect bounding_union(const Rect& r) const;
    Rect translated(double dx, double dy) const;
    Rect inflated(double margin) const;

    bool operator==(const Rect& o) const;

    std::string to_string() const;
};

/// Total area of a set of possibly overlapping rectangles (sweep by
/// coordinate decomposition).  Used for capacitance extraction where
/// overlapping shapes on one net must not double-count.
double union_area(const std::vector<Rect>& rects);

/// Euclidean distance between rect boundaries (0 when touching/overlapping).
double rect_distance(const Rect& a, const Rect& b);

} // namespace snim::geom
