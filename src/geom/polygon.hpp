// Rectilinear polygons as rectangle unions; ring (annulus) helpers used by
// guard rings and the NMOS ground ring in the paper's test structures.
#pragma once

#include <vector>

#include "geom/rect.hpp"

namespace snim::geom {

/// A rectilinear region stored as a set of axis-aligned rectangles.  The
/// rectangles may overlap; area() deduplicates.
class Region {
public:
    Region() = default;
    explicit Region(std::vector<Rect> rects) : rects_(std::move(rects)) {}

    void add(const Rect& r);
    const std::vector<Rect>& rects() const { return rects_; }
    bool empty() const { return rects_.empty(); }

    double area() const { return union_area(rects_); }
    Rect bbox() const;
    bool contains(const Point& p) const;
    bool overlaps(const Rect& r) const;

    /// Region clipped to `window`.
    Region clipped(const Rect& window) const;
    Region translated(double dx, double dy) const;

private:
    std::vector<Rect> rects_;
};

/// Four rectangles forming a rectangular ring with outer boundary `outer`
/// and uniform band width `width` (a guard-ring / substrate-contact ring).
std::vector<Rect> make_ring(const Rect& outer, double width);

/// Serpentine wire: `turns` horizontal legs of width `wire_width` spanning
/// `span_x`, pitched `pitch` apart, connected by vertical stubs.  Used to
/// build realistic resistive ground straps.
std::vector<Rect> make_serpentine(const Point& origin, double span_x, double wire_width,
                                  double pitch, int turns);

} // namespace snim::geom
