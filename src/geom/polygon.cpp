#include "geom/polygon.hpp"

#include "util/error.hpp"

namespace snim::geom {

void Region::add(const Rect& r) {
    if (!r.empty()) rects_.push_back(r);
}

Rect Region::bbox() const {
    Rect b;
    for (const auto& r : rects_) b = b.bounding_union(r);
    return b;
}

bool Region::contains(const Point& p) const {
    for (const auto& r : rects_)
        if (r.contains(p)) return true;
    return false;
}

bool Region::overlaps(const Rect& q) const {
    for (const auto& r : rects_)
        if (r.overlaps(q)) return true;
    return false;
}

Region Region::clipped(const Rect& window) const {
    Region out;
    for (const auto& r : rects_) out.add(r.intersection(window));
    return out;
}

Region Region::translated(double dx, double dy) const {
    Region out;
    for (const auto& r : rects_) out.add(r.translated(dx, dy));
    return out;
}

std::vector<Rect> make_ring(const Rect& outer, double width) {
    SNIM_ASSERT(width > 0, "ring width must be positive");
    SNIM_ASSERT(outer.width() > 2 * width && outer.height() > 2 * width,
                "ring width %g too large for outer %s", width, outer.to_string().c_str());
    std::vector<Rect> ring;
    ring.emplace_back(outer.x0, outer.y1 - width, outer.x1, outer.y1);       // top
    ring.emplace_back(outer.x0, outer.y0, outer.x1, outer.y0 + width);       // bottom
    ring.emplace_back(outer.x0, outer.y0 + width, outer.x0 + width,
                      outer.y1 - width);                                      // left
    ring.emplace_back(outer.x1 - width, outer.y0 + width, outer.x1,
                      outer.y1 - width);                                      // right
    return ring;
}

std::vector<Rect> make_serpentine(const Point& origin, double span_x, double wire_width,
                                  double pitch, int turns) {
    SNIM_ASSERT(turns >= 1, "serpentine needs at least one leg");
    SNIM_ASSERT(pitch > wire_width, "pitch must exceed wire width");
    std::vector<Rect> out;
    for (int leg = 0; leg < turns; ++leg) {
        const double y = origin.y + leg * pitch;
        out.emplace_back(origin.x, y, origin.x + span_x, y + wire_width);
        if (leg + 1 < turns) {
            // Alternate the connecting stub between right and left ends.
            const double x = (leg % 2 == 0) ? origin.x + span_x - wire_width : origin.x;
            out.emplace_back(x, y, x + wire_width, y + pitch + wire_width);
        }
    }
    return out;
}

} // namespace snim::geom
