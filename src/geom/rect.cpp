#include "geom/rect.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace snim::geom {

Rect::Rect(double ax0, double ay0, double ax1, double ay1)
    : x0(std::min(ax0, ax1)),
      y0(std::min(ay0, ay1)),
      x1(std::max(ax0, ax1)),
      y1(std::max(ay0, ay1)) {}

Rect Rect::centered(double cx, double cy, double w, double h) {
    SNIM_ASSERT(w >= 0 && h >= 0, "negative size");
    return Rect(cx - w / 2, cy - h / 2, cx + w / 2, cy + h / 2);
}

bool Rect::contains(const Point& p) const {
    return p.x >= x0 && p.x <= x1 && p.y >= y0 && p.y <= y1;
}

bool Rect::contains(const Rect& r) const {
    return r.x0 >= x0 && r.x1 <= x1 && r.y0 >= y0 && r.y1 <= y1;
}

bool Rect::touches(const Rect& r) const {
    return x0 <= r.x1 && r.x0 <= x1 && y0 <= r.y1 && r.y0 <= y1;
}

bool Rect::overlaps(const Rect& r) const {
    return x0 < r.x1 && r.x0 < x1 && y0 < r.y1 && r.y0 < y1;
}

Rect Rect::intersection(const Rect& r) const {
    Rect out;
    out.x0 = std::max(x0, r.x0);
    out.y0 = std::max(y0, r.y0);
    out.x1 = std::min(x1, r.x1);
    out.y1 = std::min(y1, r.y1);
    if (out.x1 < out.x0 || out.y1 < out.y0) return Rect{};
    return out;
}

Rect Rect::bounding_union(const Rect& r) const {
    if (empty()) return r;
    if (r.empty()) return *this;
    return Rect(std::min(x0, r.x0), std::min(y0, r.y0), std::max(x1, r.x1),
                std::max(y1, r.y1));
}

Rect Rect::translated(double dx, double dy) const {
    return Rect(x0 + dx, y0 + dy, x1 + dx, y1 + dy);
}

Rect Rect::inflated(double margin) const {
    return Rect(x0 - margin, y0 - margin, x1 + margin, y1 + margin);
}

bool Rect::operator==(const Rect& o) const {
    return x0 == o.x0 && y0 == o.y0 && x1 == o.x1 && y1 == o.y1;
}

std::string Rect::to_string() const {
    return format("(%g,%g)-(%g,%g)", x0, y0, x1, y1);
}

double union_area(const std::vector<Rect>& rects) {
    // Coordinate-compression decomposition: O(n^2) cells, fine for the shape
    // counts a net carries.
    std::vector<double> xs, ys;
    for (const auto& r : rects) {
        if (r.empty()) continue;
        xs.push_back(r.x0);
        xs.push_back(r.x1);
        ys.push_back(r.y0);
        ys.push_back(r.y1);
    }
    if (xs.empty()) return 0.0;
    std::sort(xs.begin(), xs.end());
    xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
    std::sort(ys.begin(), ys.end());
    ys.erase(std::unique(ys.begin(), ys.end()), ys.end());

    double total = 0.0;
    for (size_t i = 0; i + 1 < xs.size(); ++i) {
        for (size_t j = 0; j + 1 < ys.size(); ++j) {
            const double cx = 0.5 * (xs[i] + xs[i + 1]);
            const double cy = 0.5 * (ys[j] + ys[j + 1]);
            for (const auto& r : rects) {
                if (r.contains(Point{cx, cy})) {
                    total += (xs[i + 1] - xs[i]) * (ys[j + 1] - ys[j]);
                    break;
                }
            }
        }
    }
    return total;
}

double rect_distance(const Rect& a, const Rect& b) {
    const double dx = std::max({0.0, b.x0 - a.x1, a.x0 - b.x1});
    const double dy = std::max({0.0, b.y0 - a.y1, a.y0 - b.y1});
    return std::hypot(dx, dy);
}

} // namespace snim::geom
