// Orthogonal layout transforms (translation, 90-degree rotations, mirror).
#pragma once

#include "geom/rect.hpp"

namespace snim::geom {

enum class Orient {
    R0,
    R90,
    R180,
    R270,
    MX,    // mirror about x axis
    MY,    // mirror about y axis
    MX90,  // mirror about x axis, then rotate 90  ((x,y) -> (y,x))
    MY90,  // mirror about y axis, then rotate 90  ((x,y) -> (-y,-x))
};

struct Transform {
    double dx = 0.0;
    double dy = 0.0;
    Orient orient = Orient::R0;

    Point apply(const Point& p) const;
    Rect apply(const Rect& r) const;
    /// Composition: (this o inner), i.e. apply `inner` first.
    Transform compose(const Transform& inner) const;
};

} // namespace snim::geom
