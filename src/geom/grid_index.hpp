// Uniform-grid spatial index for rectangle overlap queries.  Connectivity
// extraction over thousands of shapes needs better than O(n^2).
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "geom/rect.hpp"

namespace snim::geom {

class GridIndex {
public:
    /// `cell` is the bin edge length in the same units as the rects (um).
    explicit GridIndex(double cell = 10.0);

    /// Inserts a rect with a caller-chosen id (e.g. shape index).
    void insert(size_t id, const Rect& r);

    /// Ids of rects whose bins intersect `query`; caller re-checks geometry.
    /// Result is deduplicated but unordered.
    std::vector<size_t> candidates(const Rect& query) const;

    size_t size() const { return count_; }

private:
    struct CellKey {
        int64_t x, y;
        bool operator==(const CellKey& o) const { return x == o.x && y == o.y; }
    };
    struct CellHash {
        size_t operator()(const CellKey& k) const {
            return std::hash<int64_t>()(k.x * 1000003 ^ k.y);
        }
    };

    int64_t bin(double v) const;

    double cell_;
    size_t count_ = 0;
    std::unordered_map<CellKey, std::vector<size_t>, CellHash> bins_;
};

} // namespace snim::geom
