#include "geom/transform.hpp"

namespace snim::geom {

namespace {
Point orient_point(const Point& p, Orient o) {
    switch (o) {
        case Orient::R0: return p;
        case Orient::R90: return {-p.y, p.x};
        case Orient::R180: return {-p.x, -p.y};
        case Orient::R270: return {p.y, -p.x};
        case Orient::MX: return {p.x, -p.y};
        case Orient::MY: return {-p.x, p.y};
        case Orient::MX90: return {p.y, p.x};
        case Orient::MY90: return {-p.y, -p.x};
    }
    return p;
}

Orient compose_orient(Orient outer, Orient inner) {
    // Compose by probing two basis points; exhaustive table would be larger.
    const Point ex{1, 0}, ey{0, 1};
    const Point rx = orient_point(orient_point(ex, inner), outer);
    const Point ry = orient_point(orient_point(ey, inner), outer);
    if (rx == Point{1, 0} && ry == Point{0, 1}) return Orient::R0;
    if (rx == Point{0, 1} && ry == Point{-1, 0}) return Orient::R90;
    if (rx == Point{-1, 0} && ry == Point{0, -1}) return Orient::R180;
    if (rx == Point{0, -1} && ry == Point{1, 0}) return Orient::R270;
    if (rx == Point{1, 0} && ry == Point{0, -1}) return Orient::MX;
    if (rx == Point{-1, 0} && ry == Point{0, 1}) return Orient::MY;
    if (rx == Point{0, 1} && ry == Point{1, 0}) return Orient::MX90;
    return Orient::MY90;
}
} // namespace

Point Transform::apply(const Point& p) const {
    const Point q = orient_point(p, orient);
    return {q.x + dx, q.y + dy};
}

Rect Transform::apply(const Rect& r) const {
    const Point a = apply(Point{r.x0, r.y0});
    const Point b = apply(Point{r.x1, r.y1});
    return Rect(a.x, a.y, b.x, b.y);
}

Transform Transform::compose(const Transform& inner) const {
    Transform out;
    out.orient = compose_orient(orient, inner.orient);
    const Point shifted = apply(Point{inner.dx, inner.dy});
    out.dx = shifted.x;
    out.dy = shifted.y;
    return out;
}

} // namespace snim::geom
