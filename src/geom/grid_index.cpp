#include "geom/grid_index.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace snim::geom {

GridIndex::GridIndex(double cell) : cell_(cell) {
    SNIM_ASSERT(cell > 0, "grid cell must be positive");
}

int64_t GridIndex::bin(double v) const {
    return static_cast<int64_t>(std::floor(v / cell_));
}

void GridIndex::insert(size_t id, const Rect& r) {
    const int64_t bx0 = bin(r.x0), bx1 = bin(r.x1);
    const int64_t by0 = bin(r.y0), by1 = bin(r.y1);
    for (int64_t bx = bx0; bx <= bx1; ++bx)
        for (int64_t by = by0; by <= by1; ++by) bins_[{bx, by}].push_back(id);
    ++count_;
}

std::vector<size_t> GridIndex::candidates(const Rect& query) const {
    std::vector<size_t> out;
    const int64_t bx0 = bin(query.x0), bx1 = bin(query.x1);
    const int64_t by0 = bin(query.y0), by1 = bin(query.y1);
    for (int64_t bx = bx0; bx <= bx1; ++bx) {
        for (int64_t by = by0; by <= by1; ++by) {
            auto it = bins_.find({bx, by});
            if (it == bins_.end()) continue;
            out.insert(out.end(), it->second.begin(), it->second.end());
        }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

} // namespace snim::geom
