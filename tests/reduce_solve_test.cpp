#include <gtest/gtest.h>

#include <cmath>

#include "mor/elimination.hpp"
#include "mor/macromodel.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace snim::mor {
namespace {

RcNetwork random_grounded_network(size_t n, int chords, uint64_t seed) {
    Rng rng(seed);
    RcNetwork net;
    net.node_count = n;
    for (size_t i = 0; i < n; ++i)
        net.add_g(static_cast<int>(i), static_cast<int>((i + 1) % n),
                  0.3 + rng.uniform(0, 2));
    for (int k = 0; k < chords; ++k) {
        int a = rng.uniform_int(0, static_cast<int>(n) - 1);
        int b = rng.uniform_int(0, static_cast<int>(n) - 1);
        if (a != b) net.add_g(a, b, rng.uniform(0.05, 1.0));
    }
    net.add_g(2, -1, 0.8);
    net.add_g(static_cast<int>(n) - 3, -1, 1.2);
    return net;
}

std::vector<std::vector<double>> port_matrix(const RcNetwork& reduced, size_t np) {
    std::vector<int> ports(np);
    for (size_t i = 0; i < np; ++i) ports[i] = static_cast<int>(i);
    return dense_port_conductance(reduced, ports);
}

TEST(ReduceBySolveTest, MatchesEliminationOnRandomNetworks) {
    for (uint64_t seed : {1u, 7u, 19u}) {
        auto net = random_grounded_network(60, 90, seed);
        const std::vector<int> ports{0, 13, 27, 41, 55};
        auto by_elim = eliminate_internal(net, ports);
        auto by_solve = reduce_by_solve(net, ports);
        auto ge = port_matrix(by_elim, ports.size());
        auto gs = port_matrix(by_solve, ports.size());
        for (size_t i = 0; i < ports.size(); ++i)
            for (size_t j = 0; j < ports.size(); ++j)
                EXPECT_NEAR(gs[i][j], ge[i][j], 1e-7 * std::fabs(ge[i][i]) + 1e-10)
                    << "seed=" << seed << " (" << i << "," << j << ")";
    }
}

TEST(ReduceBySolveTest, SeriesChain) {
    RcNetwork net;
    net.node_count = 4;
    net.add_g(0, 1, 2.0);
    net.add_g(1, 2, 2.0);
    net.add_g(2, 3, 2.0);
    auto red = reduce_by_solve(net, {0, 3});
    ASSERT_EQ(red.node_count, 2u);
    double g = 0.0;
    for (const auto& e : red.conductances)
        if (e.b >= 0) g += e.value;
    EXPECT_NEAR(g, 2.0 / 3.0, 1e-9);
}

TEST(ReduceBySolveTest, PortMatrixIsSymmetricAndDiagonallyDominant) {
    auto net = random_grounded_network(80, 160, 3);
    const std::vector<int> ports{0, 10, 20, 30, 40, 50, 60, 70};
    auto red = reduce_by_solve(net, ports);
    // Realized netlist has only positive conductances by construction.
    for (const auto& e : red.conductances) EXPECT_GT(e.value, 0.0);
    auto g = port_matrix(red, ports.size());
    for (size_t i = 0; i < ports.size(); ++i)
        for (size_t j = i + 1; j < ports.size(); ++j)
            EXPECT_NEAR(g[i][j], g[j][i], 1e-9);
}

TEST(ReduceBySolveTest, CapacitanceConservedForGroundedInternals) {
    RcNetwork net;
    net.node_count = 4;
    net.add_g(0, 1, 1.0);
    net.add_g(1, 2, 1.0);
    net.add_g(2, 3, 1.0);
    net.add_c(1, -1, 10e-15);
    net.add_c(2, -1, 20e-15);
    net.add_c(0, -1, 1e-15);
    auto red = reduce_by_solve(net, {0, 3});
    EXPECT_NEAR(total_capacitance(red), 31e-15, 1e-19);
}

TEST(ReduceBySolveTest, PortAttachedCapKeepsSeriesTopology) {
    // Port 1 couples capacitively to internal node 2, which connects
    // resistively to port 0: the reduced model must contain a port-port
    // capacitance, NOT a cap from port 1 to ground.
    RcNetwork net;
    net.node_count = 3;
    net.add_g(0, 2, 1.0);
    net.add_c(1, 2, 50e-15);
    auto red = reduce_by_solve(net, {0, 1});
    double c01 = 0.0, c1g = 0.0;
    for (const auto& e : red.capacitances) {
        if (e.b == -1 && e.a == 1) c1g += e.value;
        if ((e.a == 0 && e.b == 1) || (e.a == 1 && e.b == 0)) c01 += e.value;
    }
    EXPECT_NEAR(c01, 50e-15, 1e-19);
    EXPECT_NEAR(c1g, 0.0, 1e-19);
}

TEST(ReduceBySolveTest, UngroundedNetworkHasNoGroundLegs) {
    RcNetwork net;
    net.node_count = 3;
    net.add_g(0, 1, 1.0);
    net.add_g(1, 2, 1.0);
    auto red = reduce_by_solve(net, {0, 2});
    for (const auto& e : red.conductances) EXPECT_GE(e.b, 0);
}

TEST(ReduceBySolveTest, LargeMeshIsFast) {
    // 40x40 resistive grid with 6 ports reduces in well under a second.
    const int n = 40;
    RcNetwork net;
    net.node_count = static_cast<size_t>(n * n);
    auto id = [n](int x, int y) { return y * n + x; };
    for (int y = 0; y < n; ++y)
        for (int x = 0; x < n; ++x) {
            if (x + 1 < n) net.add_g(id(x, y), id(x + 1, y), 1.0);
            if (y + 1 < n) net.add_g(id(x, y), id(x, y + 1), 1.0);
        }
    const std::vector<int> ports{id(0, 0), id(39, 0),  id(0, 39),
                                 id(39, 39), id(20, 20), id(10, 30)};
    auto red = reduce_by_solve(net, ports);
    EXPECT_EQ(red.node_count, 6u);
    // Sanity: adjacent corners see less resistance than opposite corners.
    auto g = dense_port_conductance(red, {0, 1, 2, 3, 4, 5});
    EXPECT_GT(-g[0][1], 0.0);
}

struct SolveCase {
    size_t n;
    size_t ports;
};

class ReduceSweep : public ::testing::TestWithParam<SolveCase> {};

TEST_P(ReduceSweep, AgreesWithDenseSchur) {
    const auto param = GetParam();
    auto net = random_grounded_network(param.n, static_cast<int>(2 * param.n), 77);
    std::vector<int> ports;
    for (size_t i = 0; i < param.ports; ++i)
        ports.push_back(static_cast<int>(i * param.n / param.ports));
    const auto gref = dense_port_conductance(net, ports);
    auto red = reduce_by_solve(net, ports);
    auto gred = port_matrix(red, ports.size());
    for (size_t i = 0; i < ports.size(); ++i)
        for (size_t j = 0; j < ports.size(); ++j)
            EXPECT_NEAR(gred[i][j], gref[i][j], 1e-6 * std::fabs(gref[i][i]) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ReduceSweep,
                         ::testing::Values(SolveCase{20, 3}, SolveCase{50, 5},
                                           SolveCase{120, 8}, SolveCase{250, 12}));

} // namespace
} // namespace snim::mor
