#include <gtest/gtest.h>

#include <cmath>

#include "circuit/mosfet.hpp"
#include "circuit/netlist.hpp"
#include "circuit/passives.hpp"
#include "circuit/sources.hpp"
#include "sim/noise.hpp"
#include "sim/op.hpp"
#include "tech/generic180.hpp"
#include "util/units.hpp"

namespace snim::sim {
namespace {

using namespace snim::circuit;
constexpr double kFourKT = 4.0 * units::kBoltzmann * 300.0;

TEST(NoiseTest, SingleResistorJohnsonNoise) {
    // A grounded resistor's open-circuit noise PSD is 4kTR.
    Netlist nl;
    nl.add<Resistor>("r1", nl.node("out"), kGround, 10e3);
    auto xop = operating_point(nl);
    auto res = noise_analysis(nl, "out", {1e6, 1e9}, xop);
    for (double psd : res.total_psd) EXPECT_NEAR(psd, kFourKT * 10e3, 1e-20);
    ASSERT_FALSE(res.contributors.empty());
    EXPECT_EQ(res.contributors[0].device, "r1");
}

TEST(NoiseTest, ParallelResistorsCombine) {
    // Two parallel resistors: 4kT(R1 || R2) regardless of the split.
    Netlist nl;
    nl.add<Resistor>("r1", nl.node("out"), kGround, 2e3);
    nl.add<Resistor>("r2", nl.node("out"), kGround, 3e3);
    auto xop = operating_point(nl);
    auto res = noise_analysis(nl, "out", {1e6}, xop);
    EXPECT_NEAR(res.total_psd[0], kFourKT * 1.2e3, 1e-20);
}

TEST(NoiseTest, RcFilterShapesTheNoise) {
    // R with C to ground: PSD rolls off as 1/(1+(f/fp)^2); the integral to
    // infinity is kT/C, independent of R.
    Netlist nl;
    nl.add<Resistor>("r1", nl.node("out"), kGround, 1e3);
    nl.add<Capacitor>("c1", nl.node("out"), kGround, 1e-12);
    auto xop = operating_point(nl);
    const double fp = 1.0 / (units::kTwoPi * 1e3 * 1e-12);
    auto res = noise_analysis(nl, "out", {fp / 100, fp, 100 * fp}, xop);
    EXPECT_NEAR(res.total_psd[0], kFourKT * 1e3, 0.01 * kFourKT * 1e3);
    EXPECT_NEAR(res.total_psd[1], 0.5 * kFourKT * 1e3, 0.01 * kFourKT * 1e3);
    EXPECT_LT(res.total_psd[2], 1e-3 * kFourKT * 1e3);
}

TEST(NoiseTest, KtOverCIntegral) {
    Netlist nl;
    nl.add<Resistor>("r1", nl.node("out"), kGround, 50.0);
    nl.add<Capacitor>("c1", nl.node("out"), kGround, 1e-12);
    auto xop = operating_point(nl);
    // Dense log sweep far past the pole.
    std::vector<double> freqs;
    for (double f = 1e6; f < 1e13; f *= 1.15) freqs.push_back(f);
    auto res = noise_analysis(nl, "out", freqs, xop);
    const double vrms = res.total_rms(1e6, 1e13);
    const double ktc = std::sqrt(units::kBoltzmann * 300.0 / 1e-12);
    EXPECT_NEAR(vrms, ktc, 0.05 * ktc);
}

TEST(NoiseTest, InductorSeriesResistanceContributes) {
    // Tank at resonance: the series-R noise appears amplified by Q^2.
    Netlist nl;
    nl.add<Inductor>("l1", nl.node("out"), kGround, 10e-9, 2.0);
    nl.add<Capacitor>("c1", nl.node("out"), kGround, 1e-12);
    auto xop = operating_point(nl);
    const double f0 = 1.0 / (units::kTwoPi * std::sqrt(10e-9 * 1e-12));
    auto res = noise_analysis(nl, "out", {f0 / 10, f0}, xop);
    EXPECT_GT(res.total_psd[1], 30.0 * res.total_psd[0]);
    ASSERT_FALSE(res.contributors.empty());
    EXPECT_EQ(res.contributors[0].device, "l1");
}

TEST(NoiseTest, MosfetAmplifiesItsOwnNoise) {
    auto t = tech::generic180();
    Netlist nl;
    nl.add<VSource>("vdd", nl.node("vdd"), kGround, Waveform::dc(1.8));
    nl.add<VSource>("vg", nl.node("g"), kGround, Waveform::dc(0.8));
    nl.add<Resistor>("rd", nl.node("vdd"), nl.node("d"), 500.0);
    nl.add<Mosfet>("m1", nl.node("d"), nl.node("g"), kGround, kGround,
                   t.mos_model("nch"), MosGeometry{.w = 20, .l = 0.18});
    auto xop = operating_point(nl);
    auto* m = nl.find_as<Mosfet>("m1");
    const auto ss = m->small_signal(xop);
    auto res = noise_analysis(nl, "d", {1e5}, xop);
    // Expected: (4kT gamma gm + 4kT/Rd) * Rout^2 with Rout = Rd || 1/gds.
    const double rout = 1.0 / (1.0 / 500.0 + ss.gds);
    const double expect =
        (kFourKT * (2.0 / 3.0) * ss.gm + kFourKT / 500.0) * rout * rout;
    EXPECT_NEAR(res.total_psd[0], expect, 0.02 * expect);
    // The transistor dominates over the resistor here.
    EXPECT_EQ(res.contributors[0].device, "m1");
}

TEST(NoiseTest, DisabledDevicesAreSilent) {
    Netlist nl;
    nl.add<Resistor>("r1", nl.node("out"), kGround, 1e3);
    auto& r2 = nl.add<Resistor>("r2", nl.node("out"), kGround, 1e3);
    auto xop = operating_point(nl);
    r2.set_disabled(true);
    auto res = noise_analysis(nl, "out", {1e6}, xop);
    r2.set_disabled(false);
    EXPECT_NEAR(res.total_psd[0], kFourKT * 1e3, 1e-20);
}

TEST(NoiseTest, RejectsGroundOutput) {
    Netlist nl;
    nl.add<Resistor>("r1", nl.node("a"), kGround, 1e3);
    auto xop = operating_point(nl);
    EXPECT_THROW(noise_analysis(nl, "0", {1e6}, xop), Error);
}

} // namespace
} // namespace snim::sim
