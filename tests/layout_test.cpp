#include <gtest/gtest.h>

#include "layout/connectivity.hpp"
#include "layout/io.hpp"
#include "layout/layout.hpp"
#include "tech/generic180.hpp"
#include "util/error.hpp"

namespace snim::layout {
namespace {

namespace L = snim::tech::layers;

TEST(LayoutTest, CellShapeAndLabelStorage) {
    Layout lay("top");
    lay.top().add_rect(L::kMetal[0], geom::Rect(0, 0, 10, 1));
    lay.top().add_label("vdd", L::kMetal[0], {5, 0.5});
    EXPECT_EQ(lay.top().shapes().size(), 1u);
    EXPECT_EQ(lay.top().labels().size(), 1u);
    EXPECT_THROW(lay.top().add_rect("", geom::Rect(0, 0, 1, 1)), Error);
    EXPECT_THROW(lay.top().add_rect(L::kMetal[0], geom::Rect(0, 0, 0, 0)), Error);
}

TEST(LayoutTest, FlattenAppliesTransforms) {
    Layout lay("top");
    Cell& sub = lay.cell("unit");
    sub.add_rect(L::kMetal[0], geom::Rect(0, 0, 2, 1));
    geom::Transform t1{10, 0, geom::Orient::R0};
    geom::Transform t2{0, 5, geom::Orient::R90};
    lay.top().add_instance("unit", t1);
    lay.top().add_instance("unit", t2);
    auto shapes = lay.flatten_shapes();
    ASSERT_EQ(shapes.size(), 2u);
    EXPECT_EQ(shapes[0].rect, geom::Rect(10, 0, 12, 1));
    EXPECT_EQ(shapes[1].rect, geom::Rect(-1, 5, 0, 7));
}

TEST(LayoutTest, NestedInstances) {
    Layout lay("top");
    Cell& leaf = lay.cell("leaf");
    leaf.add_rect(L::kMetal[0], geom::Rect(0, 0, 1, 1));
    Cell& mid = lay.cell("mid");
    mid.add_instance("leaf", {100, 0, geom::Orient::R0});
    lay.top().add_instance("mid", {0, 50, geom::Orient::R0});
    auto shapes = lay.flatten_shapes();
    ASSERT_EQ(shapes.size(), 1u);
    EXPECT_EQ(shapes[0].rect, geom::Rect(100, 50, 101, 51));
}

TEST(LayoutTest, MissingCellThrows) {
    Layout lay("top");
    lay.top().add_instance("ghost", {});
    EXPECT_THROW(lay.flatten_shapes(), Error);
}

TEST(LayoutTest, BboxAndHistogram) {
    Layout lay("top");
    lay.top().add_rect(L::kMetal[0], geom::Rect(0, 0, 5, 5));
    lay.top().add_rect(L::kMetal[1], geom::Rect(-3, 2, 0, 4));
    auto bb = lay.bbox();
    EXPECT_EQ(bb, geom::Rect(-3, 0, 5, 5));
    auto hist = lay.layer_histogram();
    EXPECT_EQ(hist.size(), 2u);
}

TEST(LayoutIoTest, RoundTrip) {
    Layout lay("chip");
    Cell& unit = lay.cell("unit");
    unit.add_rect(L::kMetal[0], geom::Rect(0, 0, 4.25, 1.5));
    unit.add_label("out", L::kMetal[0], {1, 0.75});
    lay.top().add_instance("unit", {12.5, -3, geom::Orient::MX});
    lay.top().add_rect(L::kPoly, geom::Rect(1, 1, 2, 2));

    const std::string text = write_layout(lay);
    Layout back = parse_layout(text);
    EXPECT_EQ(back.top_name(), "chip");
    auto shapes = back.flatten_shapes();
    ASSERT_EQ(shapes.size(), 2u);
    auto labels = back.flatten_labels();
    ASSERT_EQ(labels.size(), 1u);
    EXPECT_EQ(labels[0].text, "out");
    // Transform survived.
    auto orig = lay.flatten_shapes();
    for (size_t i = 0; i < shapes.size(); ++i) EXPECT_EQ(shapes[i].rect, orig[i].rect);
}

TEST(LayoutIoTest, ParseErrors) {
    EXPECT_THROW(parse_layout("cell x\n"), Error);
    EXPECT_THROW(parse_layout("layout t\nrect m1 0 0 1 1\n"), Error); // outside cell
    EXPECT_THROW(parse_layout("layout t\ncell t\nbogus\n"), Error);
    EXPECT_THROW(parse_layout(""), Error);
}

TEST(ConnectivityTest, TouchingShapesMerge) {
    auto t = tech::generic180();
    std::vector<Shape> shapes{
        {L::kMetal[0], geom::Rect(0, 0, 10, 1)},
        {L::kMetal[0], geom::Rect(10, 0, 20, 1)},  // touches the first
        {L::kMetal[0], geom::Rect(0, 10, 5, 11)},  // separate
    };
    auto nets = extract_connectivity(shapes, {}, t);
    EXPECT_EQ(nets.net_count, 2u);
    EXPECT_EQ(nets.shape_net[0], nets.shape_net[1]);
    EXPECT_NE(nets.shape_net[0], nets.shape_net[2]);
}

TEST(ConnectivityTest, ViaConnectsLayers) {
    auto t = tech::generic180();
    std::vector<Shape> shapes{
        {L::kMetal[0], geom::Rect(0, 0, 10, 1)},
        {L::kMetal[1], geom::Rect(8, -5, 9, 5)},
        {L::kVia[0], geom::Rect(8.2, 0.2, 8.8, 0.8)},
    };
    auto nets = extract_connectivity(shapes, {}, t);
    EXPECT_EQ(nets.net_count, 1u);
    EXPECT_EQ(nets.shape_net[0], nets.shape_net[1]);
}

TEST(ConnectivityTest, WithoutViaLayersStaySeparate) {
    auto t = tech::generic180();
    std::vector<Shape> shapes{
        {L::kMetal[0], geom::Rect(0, 0, 10, 1)},
        {L::kMetal[1], geom::Rect(0, 0, 10, 1)}, // overlapping, different layer
    };
    auto nets = extract_connectivity(shapes, {}, t);
    EXPECT_EQ(nets.net_count, 2u);
}

TEST(ConnectivityTest, LabelsNameNets) {
    auto t = tech::generic180();
    std::vector<Shape> shapes{
        {L::kMetal[0], geom::Rect(0, 0, 10, 1)},
        {L::kMetal[0], geom::Rect(0, 5, 10, 6)},
    };
    std::vector<Label> labels{
        {"vgnd", L::kMetal[0], {1, 0.5}},
        {"vdd", L::kMetal[0], {1, 5.5}},
    };
    auto nets = extract_connectivity(shapes, labels, t);
    ASSERT_EQ(nets.net_count, 2u);
    EXPECT_GE(nets.find_net("vgnd"), 0);
    EXPECT_GE(nets.find_net("vdd"), 0);
    EXPECT_NE(nets.find_net("vgnd"), nets.find_net("vdd"));
    EXPECT_EQ(nets.find_net("missing"), -1);
}

TEST(ConnectivityTest, ConflictingLabelsThrow) {
    auto t = tech::generic180();
    std::vector<Shape> shapes{{L::kMetal[0], geom::Rect(0, 0, 10, 1)}};
    std::vector<Label> labels{
        {"a", L::kMetal[0], {1, 0.5}},
        {"b", L::kMetal[0], {2, 0.5}},
    };
    EXPECT_THROW(extract_connectivity(shapes, labels, t), Error);
}

TEST(ConnectivityTest, NonConductingLayersIgnored) {
    auto t = tech::generic180();
    std::vector<Shape> shapes{
        {L::kNWell, geom::Rect(0, 0, 10, 10)},
        {L::kMetal[0], geom::Rect(0, 0, 10, 1)},
    };
    auto nets = extract_connectivity(shapes, {}, t);
    EXPECT_EQ(nets.net_count, 1u);
    EXPECT_EQ(nets.shape_net[0], -1);
    EXPECT_GE(nets.shape_net[1], 0);
}

} // namespace
} // namespace snim::layout
