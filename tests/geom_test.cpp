#include <gtest/gtest.h>
#include <cmath>

#include "geom/grid_index.hpp"
#include "geom/polygon.hpp"
#include "geom/rect.hpp"
#include "geom/transform.hpp"
#include "util/error.hpp"

namespace snim::geom {
namespace {

TEST(RectTest, NormalisesCorners) {
    Rect r(5, 7, 1, 2);
    EXPECT_DOUBLE_EQ(r.x0, 1);
    EXPECT_DOUBLE_EQ(r.y0, 2);
    EXPECT_DOUBLE_EQ(r.x1, 5);
    EXPECT_DOUBLE_EQ(r.y1, 7);
    EXPECT_DOUBLE_EQ(r.width(), 4);
    EXPECT_DOUBLE_EQ(r.height(), 5);
    EXPECT_DOUBLE_EQ(r.area(), 20);
    EXPECT_DOUBLE_EQ(r.perimeter(), 18);
}

TEST(RectTest, CenteredFactory) {
    Rect r = Rect::centered(10, 20, 4, 6);
    EXPECT_DOUBLE_EQ(r.x0, 8);
    EXPECT_DOUBLE_EQ(r.y1, 23);
    EXPECT_DOUBLE_EQ(r.center().x, 10);
    EXPECT_DOUBLE_EQ(r.center().y, 20);
}

TEST(RectTest, OverlapAndTouch) {
    Rect a(0, 0, 2, 2), b(2, 0, 4, 2), c(3, 3, 5, 5);
    EXPECT_TRUE(a.touches(b));   // share an edge
    EXPECT_FALSE(a.overlaps(b)); // open-interval: no interior overlap
    EXPECT_FALSE(a.touches(c));
    Rect d(1, 1, 3, 3);
    EXPECT_TRUE(a.overlaps(d));
}

TEST(RectTest, IntersectionAndUnion) {
    Rect a(0, 0, 4, 4), b(2, 2, 6, 6);
    Rect i = a.intersection(b);
    EXPECT_DOUBLE_EQ(i.area(), 4.0);
    Rect u = a.bounding_union(b);
    EXPECT_DOUBLE_EQ(u.area(), 36.0);
    Rect disjoint(10, 10, 11, 11);
    EXPECT_TRUE(a.intersection(disjoint).empty());
}

TEST(RectTest, ContainsAndTranslate) {
    Rect a(0, 0, 4, 4);
    EXPECT_TRUE(a.contains(Point{2, 2}));
    EXPECT_TRUE(a.contains(Rect(1, 1, 3, 3)));
    EXPECT_FALSE(a.contains(Rect(1, 1, 5, 3)));
    Rect t = a.translated(10, -1);
    EXPECT_DOUBLE_EQ(t.x0, 10);
    EXPECT_DOUBLE_EQ(t.y1, 3);
    Rect inf = a.inflated(1);
    EXPECT_DOUBLE_EQ(inf.area(), 36.0);
}

TEST(RectTest, UnionAreaDeduplicates) {
    // Two identical rects count once; partial overlap counts the union.
    EXPECT_DOUBLE_EQ(union_area({Rect(0, 0, 2, 2), Rect(0, 0, 2, 2)}), 4.0);
    EXPECT_DOUBLE_EQ(union_area({Rect(0, 0, 2, 2), Rect(1, 0, 3, 2)}), 6.0);
    EXPECT_DOUBLE_EQ(union_area({}), 0.0);
    EXPECT_DOUBLE_EQ(union_area({Rect(0, 0, 1, 1), Rect(5, 5, 6, 6)}), 2.0);
}

TEST(RectTest, Distance) {
    Rect a(0, 0, 1, 1), b(3, 0, 4, 1), c(3, 4, 4, 5);
    EXPECT_DOUBLE_EQ(rect_distance(a, b), 2.0);
    EXPECT_DOUBLE_EQ(rect_distance(a, c), std::hypot(2.0, 3.0));
    EXPECT_DOUBLE_EQ(rect_distance(a, a), 0.0);
}

TEST(RegionTest, AreaAndContains) {
    Region reg;
    reg.add(Rect(0, 0, 2, 2));
    reg.add(Rect(1, 1, 3, 3));
    EXPECT_DOUBLE_EQ(reg.area(), 7.0);
    EXPECT_TRUE(reg.contains(Point{2.5, 2.5}));
    EXPECT_FALSE(reg.contains(Point{2.5, 0.5}));
    EXPECT_DOUBLE_EQ(reg.bbox().area(), 9.0);
}

TEST(RegionTest, ClipAndTranslate) {
    Region reg(std::vector<Rect>{Rect(0, 0, 4, 4)});
    Region c = reg.clipped(Rect(2, 2, 10, 10));
    EXPECT_DOUBLE_EQ(c.area(), 4.0);
    Region t = reg.translated(1, 1);
    EXPECT_TRUE(t.contains(Point{4.5, 4.5}));
}

TEST(RingTest, GeometryIsCorrect) {
    auto ring = make_ring(Rect(0, 0, 10, 10), 1.0);
    ASSERT_EQ(ring.size(), 4u);
    // Total ring area = outer - inner = 100 - 64 = 36.
    EXPECT_DOUBLE_EQ(union_area(ring), 36.0);
    EXPECT_THROW(make_ring(Rect(0, 0, 1, 1), 0.6), Error);
}

TEST(SerpentineTest, LegsAndStubsConnect) {
    auto sp = make_serpentine(Point{0, 0}, 20.0, 1.0, 4.0, 3);
    // 3 legs + 2 stubs.
    ASSERT_EQ(sp.size(), 5u);
    // Every stub must touch two legs.
    int touch_pairs = 0;
    for (size_t i = 0; i < sp.size(); ++i)
        for (size_t j = i + 1; j < sp.size(); ++j)
            if (sp[i].touches(sp[j])) ++touch_pairs;
    EXPECT_GE(touch_pairs, 4);
}

TEST(TransformTest, OrientPoints) {
    Transform r90{0, 0, Orient::R90};
    Point p = r90.apply(Point{1, 0});
    EXPECT_DOUBLE_EQ(p.x, 0);
    EXPECT_DOUBLE_EQ(p.y, 1);
    Transform mx{0, 0, Orient::MX};
    Point q = mx.apply(Point{2, 3});
    EXPECT_DOUBLE_EQ(q.y, -3);
}

TEST(TransformTest, TranslateAfterRotate) {
    Transform t{10, 5, Orient::R180};
    Rect r = t.apply(Rect(0, 0, 2, 1));
    EXPECT_DOUBLE_EQ(r.x0, 8);
    EXPECT_DOUBLE_EQ(r.y0, 4);
    EXPECT_DOUBLE_EQ(r.x1, 10);
    EXPECT_DOUBLE_EQ(r.y1, 5);
}

TEST(TransformTest, ComposeMatchesSequentialApplication) {
    const Transform outer{3, -2, Orient::R90};
    const Transform inner{1, 4, Orient::MX};
    const Transform combined = outer.compose(inner);
    for (const Point p : {Point{0, 0}, Point{1, 0}, Point{2.5, -1.5}}) {
        const Point seq = outer.apply(inner.apply(p));
        const Point one = combined.apply(p);
        EXPECT_NEAR(seq.x, one.x, 1e-12);
        EXPECT_NEAR(seq.y, one.y, 1e-12);
    }
}

TEST(GridIndexTest, FindsOverlapCandidates) {
    GridIndex idx(5.0);
    idx.insert(0, Rect(0, 0, 3, 3));
    idx.insert(1, Rect(20, 20, 23, 23));
    idx.insert(2, Rect(2, 2, 6, 6));
    auto c = idx.candidates(Rect(1, 1, 4, 4));
    EXPECT_NE(std::find(c.begin(), c.end(), 0u), c.end());
    EXPECT_NE(std::find(c.begin(), c.end(), 2u), c.end());
    EXPECT_EQ(std::find(c.begin(), c.end(), 1u), c.end());
    EXPECT_EQ(idx.size(), 3u);
}

TEST(GridIndexTest, LargeRectSpansManyBins) {
    GridIndex idx(1.0);
    idx.insert(7, Rect(0, 0, 10, 0.5));
    auto c = idx.candidates(Rect(9.2, 0.1, 9.4, 0.2));
    ASSERT_EQ(c.size(), 1u);
    EXPECT_EQ(c[0], 7u);
}

TEST(GridIndexTest, NegativeCoordinates) {
    GridIndex idx(2.0);
    idx.insert(1, Rect(-5, -5, -3, -3));
    auto c = idx.candidates(Rect(-4, -4, -3.5, -3.5));
    ASSERT_EQ(c.size(), 1u);
}

} // namespace
} // namespace snim::geom
