#include <gtest/gtest.h>

#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace snim {
namespace {

TEST(ErrorTest, FormatProducesMessage) {
    EXPECT_EQ(format("x=%d y=%s", 3, "abc"), "x=3 y=abc");
}

TEST(ErrorTest, RaiseThrowsSnimError) {
    EXPECT_THROW(raise("bad %d", 42), Error);
    try {
        raise("bad %d", 42);
    } catch (const Error& e) {
        EXPECT_STREQ(e.what(), "bad 42");
    }
}

TEST(ErrorTest, AssertMacroThrowsWithContext) {
    EXPECT_THROW(SNIM_ASSERT(1 == 2, "reason %d", 7), Error);
}

TEST(StringsTest, SplitDropsEmptyFields) {
    auto v = split("  a \t b\tc  ");
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[0], "a");
    EXPECT_EQ(v[1], "b");
    EXPECT_EQ(v[2], "c");
}

TEST(StringsTest, SplitKeepKeepsEmptyFields) {
    auto v = split_keep("a,,b,", ',');
    ASSERT_EQ(v.size(), 4u);
    EXPECT_EQ(v[1], "");
    EXPECT_EQ(v[3], "");
}

TEST(StringsTest, TrimAndCase) {
    EXPECT_EQ(trim("  hi \n"), "hi");
    EXPECT_EQ(to_lower("AbC"), "abc");
    EXPECT_EQ(to_upper("AbC"), "ABC");
    EXPECT_TRUE(equals_nocase("VDD", "vdd"));
    EXPECT_TRUE(starts_with_nocase("Rground1", "rg"));
    EXPECT_FALSE(starts_with_nocase("R", "rg"));
}

TEST(StringsTest, ParseSpiceNumberPlain) {
    EXPECT_DOUBLE_EQ(parse_spice_number("1.5"), 1.5);
    EXPECT_DOUBLE_EQ(parse_spice_number("-3e2"), -300.0);
}

TEST(StringsTest, ParseSpiceNumberSuffixes) {
    EXPECT_DOUBLE_EQ(parse_spice_number("2k"), 2000.0);
    EXPECT_DOUBLE_EQ(parse_spice_number("3meg"), 3e6);
    EXPECT_DOUBLE_EQ(parse_spice_number("5m"), 5e-3);
    EXPECT_DOUBLE_EQ(parse_spice_number("120f"), 120e-15);
    EXPECT_DOUBLE_EQ(parse_spice_number("2.2p"), 2.2e-12);
    EXPECT_DOUBLE_EQ(parse_spice_number("1g"), 1e9);
    EXPECT_DOUBLE_EQ(parse_spice_number("4u"), 4e-6);
    EXPECT_DOUBLE_EQ(parse_spice_number("7n"), 7e-9);
    EXPECT_DOUBLE_EQ(parse_spice_number("9t"), 9e12);
}

TEST(StringsTest, ParseSpiceNumberUnitLetters) {
    EXPECT_DOUBLE_EQ(parse_spice_number("2.2pF"), 2.2e-12);
    EXPECT_DOUBLE_EQ(parse_spice_number("50ohm"), 50.0);
    EXPECT_DOUBLE_EQ(parse_spice_number("3GHz"), 3e9);
}

TEST(StringsTest, ParseSpiceNumberRejectsGarbage) {
    EXPECT_THROW(parse_spice_number("abc"), Error);
    EXPECT_THROW(parse_spice_number(""), Error);
    EXPECT_THROW(parse_spice_number("1.2.3!"), Error);
    EXPECT_FALSE(is_spice_number("xyz"));
    EXPECT_TRUE(is_spice_number("1k"));
}

TEST(StringsTest, EngFormat) {
    EXPECT_EQ(eng_format(0.0), "0");
    EXPECT_EQ(eng_format(2200.0), "2.2k");
    EXPECT_EQ(eng_format(1e-12), "1p");
    EXPECT_EQ(eng_format(-4.7e-9), "-4.7n");
}

TEST(UnitsTest, DbRoundTrip) {
    using namespace units;
    EXPECT_NEAR(db20(from_db20(-45.0)), -45.0, 1e-12);
    EXPECT_NEAR(db10(from_db10(13.0)), 13.0, 1e-12);
}

TEST(UnitsTest, DbmAmplitudeRoundTrip) {
    using namespace units;
    // -5 dBm into 50 ohm is about 178 mV amplitude (the paper's noise drive).
    const double amp = amplitude_from_dbm(-5.0);
    EXPECT_NEAR(amp, 0.1778, 5e-4);
    EXPECT_NEAR(dbm_from_amplitude(amp), -5.0, 1e-12);
}

TEST(RngTest, DeterministicAcrossInstances) {
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, UniformInRange) {
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform(2.0, 3.0);
        EXPECT_GE(u, 2.0);
        EXPECT_LT(u, 3.0);
    }
}

TEST(RngTest, UniformIntCoversRange) {
    Rng r(9);
    bool seen[5] = {false, false, false, false, false};
    for (int i = 0; i < 500; ++i) seen[r.uniform_int(0, 4)] = true;
    for (bool s : seen) EXPECT_TRUE(s);
}

TEST(RngTest, NormalMoments) {
    Rng r(42);
    double sum = 0, sum2 = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double x = r.normal();
        sum += x;
        sum2 += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.03);
    EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(TableTest, RendersHeadersAndRows) {
    Table t({"f", "spur"});
    t.add_row({"1M", "-30"});
    t.add_row_values({2e6, -36.1}, 3);
    const std::string s = t.to_string();
    EXPECT_NE(s.find("| f"), std::string::npos);
    EXPECT_NE(s.find("-30"), std::string::npos);
    EXPECT_NE(s.find("2e+06"), std::string::npos);
    EXPECT_EQ(t.row_count(), 2u);
}

TEST(TableTest, RejectsWrongWidth) {
    Table t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(AsciiPlotTest, RendersMarkers) {
    AsciiPlot p("title", "f", "dB");
    p.set_log_x(true);
    p.add({"s1", {1e6, 1e7}, {-30, -50}, '*'});
    const std::string s = p.to_string();
    EXPECT_NE(s.find('*'), std::string::npos);
    EXPECT_NE(s.find("title"), std::string::npos);
}

TEST(CsvTest, RoundTripContent) {
    CsvWriter w({"x", "y"});
    w.add_row({1.0, 2.5});
    w.add_row(std::vector<std::string>{"a", "b"});
    const std::string s = w.to_string();
    EXPECT_EQ(s, "x,y\n1,2.5\na,b\n");
}

TEST(CsvTest, RejectsWrongWidth) {
    CsvWriter w({"x", "y"});
    EXPECT_THROW(w.add_row(std::vector<double>{1.0}), Error);
}

TEST(CsvTest, ReaderRoundTripsWriterOutput) {
    CsvWriter w({"fnoise_Hz", "pred_dbm", "note"});
    w.add_row(std::vector<std::string>{"1e+06", "-44.25", "calibrated"});
    w.add_row(std::vector<std::string>{"1.5e+07", "-67.5", ""});
    const CsvTable t = parse_csv(w.to_string());

    ASSERT_EQ(t.headers().size(), 3u);
    EXPECT_EQ(t.row_count(), 2u);
    EXPECT_TRUE(t.has_column("pred_dbm"));
    EXPECT_FALSE(t.has_column("meas_dbm"));
    EXPECT_THROW(t.column("meas_dbm"), Error);

    const size_t f = t.column("fnoise_Hz"), p = t.column("pred_dbm");
    EXPECT_DOUBLE_EQ(t.number(0, f), 1e6);
    EXPECT_DOUBLE_EQ(t.number(1, p), -67.5);
    EXPECT_EQ(t.cell(0, t.column("note")), "calibrated");
    EXPECT_TRUE(t.empty_cell(1, t.column("note")));
    EXPECT_FALSE(t.empty_cell(0, f));
    // Text cells do not silently parse as numbers.
    EXPECT_THROW(t.number(0, t.column("note")), Error);
}

TEST(CsvTest, ParserRejectsRaggedAndEmptyInput) {
    EXPECT_THROW(parse_csv("a,b\n1,2,3\n"), Error);
    EXPECT_THROW(parse_csv(""), Error);
    // CRLF line endings and a missing trailing newline both parse.
    const CsvTable t = parse_csv("a,b\r\n1,2\r\n3,4");
    EXPECT_EQ(t.row_count(), 2u);
    EXPECT_DOUBLE_EQ(t.number(1, 1), 4.0);
}

} // namespace
} // namespace snim
