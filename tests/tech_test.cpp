#include <gtest/gtest.h>

#include "tech/generic180.hpp"
#include "tech/technology.hpp"
#include "util/error.hpp"

namespace snim::tech {
namespace {

TEST(DopingTest, HighOhmicUniform) {
    auto p = DopingProfile::high_ohmic(20.0, 250.0);
    EXPECT_DOUBLE_EQ(p.depth(), 250.0);
    EXPECT_FALSE(p.backside_grounded());
    // 20 ohm cm = 0.2 ohm m -> sigma = 5 S/m.
    EXPECT_NEAR(p.conductivity_at(10.0), 5.0, 1e-12);
    EXPECT_NEAR(p.conductivity_at(200.0), 5.0, 1e-12);
}

TEST(DopingTest, EpiLayered) {
    auto p = DopingProfile::epi(15.0, 7.0, 0.015, 250.0);
    EXPECT_TRUE(p.backside_grounded());
    EXPECT_NEAR(p.resistivity_at(3.0), 0.15, 1e-12);   // epi: 15 ohm cm
    EXPECT_NEAR(p.resistivity_at(50.0), 1.5e-4, 1e-12); // bulk: 0.015 ohm cm
}

TEST(DopingTest, RejectsBadLayers) {
    EXPECT_THROW(DopingProfile({{0.0, 20.0}}), Error);
    EXPECT_THROW(DopingProfile({{10.0, -1.0}}), Error);
    EXPECT_THROW(DopingProfile(std::vector<DopingLayer>{}), Error);
}

TEST(TechnologyTest, LayerLookup) {
    Technology t("test", DopingProfile::high_ohmic());
    t.add_layer({.name = "metal1", .kind = LayerKind::Routing, .sheet_res = 0.08});
    EXPECT_TRUE(t.has_layer("metal1"));
    EXPECT_FALSE(t.has_layer("metal9"));
    EXPECT_DOUBLE_EQ(t.layer("metal1").sheet_res, 0.08);
    EXPECT_THROW(t.layer("metal9"), Error);
    EXPECT_THROW(t.add_layer({.name = "metal1"}), Error);
}

TEST(Generic180Test, HasFullStack) {
    auto t = generic180();
    EXPECT_EQ(t.name(), "generic180");
    for (const char* m : layers::kMetal) EXPECT_TRUE(t.has_layer(m));
    for (const char* v : layers::kVia) EXPECT_TRUE(t.has_layer(v));
    EXPECT_TRUE(t.has_layer(layers::kPoly));
    EXPECT_TRUE(t.has_layer(layers::kSubTap));
    EXPECT_TRUE(t.has_layer(layers::kNWell));
}

TEST(Generic180Test, RoutingLayersOrderedByHeight) {
    auto t = generic180();
    auto routing = t.routing_layers();
    ASSERT_GE(routing.size(), 7u); // poly + 6 metals
    for (size_t i = 1; i < routing.size(); ++i)
        EXPECT_GT(routing[i]->height, routing[i - 1]->height);
}

TEST(Generic180Test, TopMetalIsThickLowResistance) {
    auto t = generic180();
    const auto& m1 = t.layer(layers::kMetal[0]);
    const auto& m6 = t.layer(layers::kMetal[5]);
    EXPECT_LT(m6.sheet_res, m1.sheet_res);
    EXPECT_GT(m6.thickness, m1.thickness);
    // Cap to substrate decreases with height.
    EXPECT_LT(m6.cap_area, m1.cap_area);
}

TEST(Generic180Test, MosModels) {
    auto t = generic180();
    const auto& n = t.mos_model("nch");
    const auto& p = t.mos_model("pch");
    EXPECT_TRUE(n.is_nmos);
    EXPECT_FALSE(p.is_nmos);
    EXPECT_GT(n.kp, p.kp); // electron mobility advantage
    EXPECT_GT(n.gamma, 0.0);
    EXPECT_THROW(t.mos_model("nope"), Error);
}

TEST(Generic180Test, VaractorModel) {
    auto t = generic180();
    const auto& v = t.varactor_model("nvar");
    EXPECT_GT(v.cmax_per_area, 0);
    EXPECT_GT(v.cmin_ratio, 0);
    EXPECT_LT(v.cmin_ratio, 1.0);
    EXPECT_THROW(t.varactor_model("nope"), Error);
}

TEST(Generic180Test, SubstrateIsHighOhmic) {
    auto t = generic180();
    // 20 ohm cm, as the paper's wafer.
    EXPECT_NEAR(t.substrate().resistivity_at(50.0), 0.2, 1e-9);
    EXPECT_FALSE(t.substrate().backside_grounded());
}

} // namespace
} // namespace snim::tech
