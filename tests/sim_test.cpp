#include <gtest/gtest.h>

#include <cmath>

#include "circuit/controlled.hpp"
#include "circuit/diode.hpp"
#include "circuit/mosfet.hpp"
#include "circuit/netlist.hpp"
#include "circuit/passives.hpp"
#include "circuit/sources.hpp"
#include "circuit/varactor.hpp"
#include "numeric/vecops.hpp"
#include "sim/ac.hpp"
#include "sim/dc_sweep.hpp"
#include "sim/op.hpp"
#include "sim/transfer.hpp"
#include "sim/transient.hpp"
#include "tech/generic180.hpp"
#include "util/units.hpp"

namespace snim::sim {
namespace {

using namespace snim::circuit;
using snim::units::kTwoPi;

TEST(OpTest, VoltageDivider) {
    Netlist nl;
    nl.add<VSource>("v1", nl.node("in"), kGround, Waveform::dc(10.0));
    nl.add<Resistor>("r1", nl.node("in"), nl.node("mid"), 1000.0);
    nl.add<Resistor>("r2", nl.node("mid"), kGround, 3000.0);
    auto x = operating_point(nl);
    EXPECT_NEAR(volt(x, nl.existing_node("mid")), 7.5, 1e-6);
    // Source delivers 10V across 4k = 2.5 mA out of its + terminal.
    auto* v = nl.find_as<VSource>("v1");
    EXPECT_NEAR(v->current(x), 2.5e-3, 1e-8);
}

TEST(OpTest, CurrentSourceIntoResistor) {
    Netlist nl;
    nl.add<ISource>("i1", kGround, nl.node("out"), Waveform::dc(1e-3));
    nl.add<Resistor>("r1", nl.node("out"), kGround, 2000.0);
    auto x = operating_point(nl);
    EXPECT_NEAR(volt(x, nl.existing_node("out")), 2.0, 1e-6);
}

TEST(OpTest, InductorIsDcShort) {
    Netlist nl;
    nl.add<VSource>("v1", nl.node("in"), kGround, Waveform::dc(1.0));
    nl.add<Inductor>("l1", nl.node("in"), nl.node("out"), 1e-9);
    nl.add<Resistor>("r1", nl.node("out"), kGround, 100.0);
    auto x = operating_point(nl);
    EXPECT_NEAR(volt(x, nl.existing_node("out")), 1.0, 1e-6);
    auto* l = nl.find_as<Inductor>("l1");
    EXPECT_NEAR(l->current(x), 1e-2, 1e-7);
}

TEST(OpTest, CapacitorIsDcOpen) {
    Netlist nl;
    nl.add<VSource>("v1", nl.node("in"), kGround, Waveform::dc(5.0));
    nl.add<Resistor>("r1", nl.node("in"), nl.node("out"), 1000.0);
    nl.add<Capacitor>("c1", nl.node("out"), kGround, 1e-12);
    auto x = operating_point(nl);
    EXPECT_NEAR(volt(x, nl.existing_node("out")), 5.0, 1e-6);
}

TEST(OpTest, DiodeResistorNewton) {
    Netlist nl;
    nl.add<VSource>("v1", nl.node("in"), kGround, Waveform::dc(2.0));
    nl.add<Resistor>("r1", nl.node("in"), nl.node("a"), 1000.0);
    nl.add<Diode>("d1", nl.node("a"), kGround, DiodeModel{});
    auto x = operating_point(nl);
    const double va = volt(x, nl.existing_node("a"));
    // Forward drop 0.6-0.85 V, current consistent with the resistor.
    EXPECT_GT(va, 0.55);
    EXPECT_LT(va, 0.9);
    auto* d = nl.find_as<Diode>("d1");
    EXPECT_NEAR(d->current(va), (2.0 - va) / 1000.0, 1e-7);
}

TEST(OpTest, NmosCommonSource) {
    auto t = tech::generic180();
    Netlist nl;
    nl.add<VSource>("vdd", nl.node("vdd"), kGround, Waveform::dc(1.8));
    nl.add<VSource>("vg", nl.node("g"), kGround, Waveform::dc(0.9));
    nl.add<Resistor>("rd", nl.node("vdd"), nl.node("d"), 1000.0);
    nl.add<Mosfet>("m1", nl.node("d"), nl.node("g"), kGround, kGround,
                   t.mos_model("nch"), MosGeometry{.w = 10, .l = 0.18});
    auto x = operating_point(nl);
    const double vd = volt(x, nl.existing_node("d"));
    EXPECT_GT(vd, 0.05);
    EXPECT_LT(vd, 1.75);
    // KCL at drain: resistor current equals drain current.
    auto* m = nl.find_as<Mosfet>("m1");
    const auto ss = m->small_signal(x);
    EXPECT_NEAR((1.8 - vd) / 1000.0, ss.ids, 1e-6);
}

TEST(OpTest, PmosNmosInverterMidRail) {
    auto t = tech::generic180();
    Netlist nl;
    nl.add<VSource>("vdd", nl.node("vdd"), kGround, Waveform::dc(1.8));
    nl.add<VSource>("vin", nl.node("in"), kGround, Waveform::dc(0.8));
    nl.add<Mosfet>("mn", nl.node("out"), nl.node("in"), kGround, kGround,
                   t.mos_model("nch"), MosGeometry{.w = 2, .l = 0.18});
    nl.add<Mosfet>("mp", nl.node("out"), nl.node("in"), nl.node("vdd"), nl.node("vdd"),
                   t.mos_model("pch"), MosGeometry{.w = 6, .l = 0.18});
    auto x = operating_point(nl);
    const double vout = volt(x, nl.existing_node("out"));
    EXPECT_GT(vout, 0.1);
    EXPECT_LT(vout, 1.7);
}

TEST(OpTest, SingularNetworkThrows) {
    // A node connected only through capacitors has no DC path; gmin keeps
    // the matrix regular, so OP succeeds but the node floats near zero.
    Netlist nl;
    nl.add<Capacitor>("c1", nl.node("a"), kGround, 1e-12);
    auto x = operating_point(nl);
    EXPECT_NEAR(volt(x, nl.existing_node("a")), 0.0, 1e-6);
}

TEST(DcSweepTest, MosfetTransferCurve) {
    auto t = tech::generic180();
    Netlist nl;
    nl.add<VSource>("vd", nl.node("d"), kGround, Waveform::dc(1.5));
    nl.add<VSource>("vg", nl.node("g"), kGround, Waveform::dc(0.0));
    nl.add<Mosfet>("m1", nl.node("d"), nl.node("g"), kGround, kGround,
                   t.mos_model("nch"), MosGeometry{.w = 10, .l = 0.18});
    auto sweep = dc_sweep(nl, "vg", linspace(0.0, 1.8, 10));
    auto* m = nl.find_as<Mosfet>("m1");
    // Current must be monotonically increasing with gate bias.
    double prev = -1.0;
    for (size_t k = 0; k < sweep.values.size(); ++k) {
        // Recompute ids by re-solving at this bias via small_signal.
        auto* vg = nl.find_as<VSource>("vg");
        vg->set_waveform(Waveform::dc(sweep.values[k]));
        const auto ss = m->small_signal(sweep.x[k]);
        EXPECT_GE(ss.ids, prev - 1e-12);
        prev = ss.ids;
    }
}

TEST(AcTest, RcLowPassPole) {
    Netlist nl;
    nl.add<VSource>("vin", nl.node("in"), kGround, Waveform::dc(0.0), AcSpec{1.0, 0.0});
    nl.add<Resistor>("r1", nl.node("in"), nl.node("out"), 1000.0);
    nl.add<Capacitor>("c1", nl.node("out"), kGround, 1e-9);
    auto xop = operating_point(nl);
    const double fpole = 1.0 / (kTwoPi * 1000.0 * 1e-9);
    auto ac = ac_sweep(nl, {fpole / 100.0, fpole, fpole * 100.0}, xop);
    const NodeId out = nl.existing_node("out");
    EXPECT_NEAR(std::abs(ac.at(0, out)), 1.0, 1e-3);
    EXPECT_NEAR(std::abs(ac.at(1, out)), 1.0 / std::sqrt(2.0), 1e-3);
    EXPECT_NEAR(std::abs(ac.at(2, out)), 0.01, 2e-4);
    // Phase at the pole is -45 degrees.
    EXPECT_NEAR(std::arg(ac.at(1, out)), -units::kPi / 4.0, 1e-3);
}

TEST(AcTest, LcTankResonance) {
    Netlist nl;
    nl.add<ISource>("iin", kGround, nl.node("t"), Waveform::dc(0.0), AcSpec{1e-3, 0.0});
    nl.add<Inductor>("l1", nl.node("t"), kGround, 2e-9, 1.0);
    nl.add<Capacitor>("c1", nl.node("t"), kGround, 1.4e-12);
    auto xop = operating_point(nl);
    const double f0 = 1.0 / (kTwoPi * std::sqrt(2e-9 * 1.4e-12));
    auto freqs = linspace(0.8 * f0, 1.2 * f0, 81);
    auto ac = ac_sweep(nl, freqs, xop);
    const NodeId t = nl.existing_node("t");
    size_t kmax = 0;
    double vmax = 0.0;
    for (size_t k = 0; k < freqs.size(); ++k) {
        const double v = std::abs(ac.at(k, t));
        if (v > vmax) {
            vmax = v;
            kmax = k;
        }
    }
    EXPECT_NEAR(freqs[kmax], f0, 0.02 * f0);
    // At resonance the tank impedance is ~ L/(R C) = Q^2 R.
    const double rp = 2e-9 / (1.0 * 1.4e-12);
    EXPECT_NEAR(vmax, 1e-3 * rp, 0.1 * 1e-3 * rp);
}

TEST(AcTest, MosfetGain) {
    auto t = tech::generic180();
    Netlist nl;
    nl.add<VSource>("vdd", nl.node("vdd"), kGround, Waveform::dc(1.8));
    nl.add<VSource>("vg", nl.node("g"), kGround, Waveform::dc(0.8), AcSpec{1.0, 0.0});
    nl.add<Resistor>("rd", nl.node("vdd"), nl.node("d"), 2000.0);
    nl.add<Mosfet>("m1", nl.node("d"), nl.node("g"), kGround, kGround,
                   t.mos_model("nch"), MosGeometry{.w = 10, .l = 0.18});
    auto xop = operating_point(nl);
    auto* m = nl.find_as<Mosfet>("m1");
    const auto ss = m->small_signal(xop);
    auto ac = ac_sweep(nl, {1e3}, xop);
    const double gain = std::abs(ac.at(0, nl.existing_node("d")));
    // |Av| = gm * (Rd || 1/gds)
    const double rout = 1.0 / (1.0 / 2000.0 + ss.gds);
    EXPECT_NEAR(gain, ss.gm * rout, 0.01 * gain);
}

TEST(TransferTest, DividerIsFrequencyFlat) {
    Netlist nl;
    nl.add<VSource>("vin", nl.node("in"), kGround, Waveform::dc(0.0));
    nl.add<Resistor>("r1", nl.node("in"), nl.node("out"), 1000.0);
    nl.add<Resistor>("r2", nl.node("out"), kGround, 1000.0);
    auto xop = operating_point(nl);
    auto tr = transfer(nl, "vin", "out", {1e3, 1e6, 1e9}, xop);
    for (size_t k = 0; k < 3; ++k) EXPECT_NEAR(std::abs(tr.h[k]), 0.5, 1e-9);
    EXPECT_NEAR(tr.mag_db(1), -6.02, 0.01);
}

TEST(TransferTest, IsolatesOtherSources) {
    // A second AC-active source must not contaminate the measurement.
    Netlist nl;
    nl.add<VSource>("vin", nl.node("in"), kGround, Waveform::dc(0.0), AcSpec{1.0, 0.0});
    nl.add<VSource>("vnoise", nl.node("n"), kGround, Waveform::dc(0.0), AcSpec{5.0, 0.0});
    nl.add<Resistor>("r1", nl.node("in"), nl.node("out"), 1000.0);
    nl.add<Resistor>("r2", nl.node("out"), kGround, 1000.0);
    nl.add<Resistor>("r3", nl.node("n"), nl.node("out"), 1000.0);
    auto xop = operating_point(nl);
    auto tr = transfer(nl, "vin", "out", {1e6}, xop);
    // With vnoise suppressed: out = in * (1k||1k)/(1k + 1k||1k) = 1/3.
    EXPECT_NEAR(std::abs(tr.h[0]), 1.0 / 3.0, 1e-9);
    // Original AC specs restored afterwards.
    EXPECT_DOUBLE_EQ(nl.find_as<VSource>("vnoise")->ac().mag, 5.0);
}

TEST(TranTest, RcStepResponse) {
    Netlist nl;
    nl.add<VSource>("vin", nl.node("in"), kGround,
                    Waveform::pulse(0.0, 1.0, 1e-9, 1e-12, 1e-12, 1.0, 2.0));
    nl.add<Resistor>("r1", nl.node("in"), nl.node("out"), 1000.0);
    nl.add<Capacitor>("c1", nl.node("out"), kGround, 1e-12);
    TranOptions opt;
    opt.tstop = 10e-9;
    opt.dt = 5e-12;
    auto res = transient(nl, {"out"}, opt);
    const auto& v = res.wave("out");
    // Analytic: v(t) = 1 - exp(-(t-1ns)/tau), tau = 1 ns.
    for (size_t k = 0; k < res.time.size(); k += 100) {
        const double t = res.time[k];
        const double expect = t < 1e-9 ? 0.0 : 1.0 - std::exp(-(t - 1e-9) / 1e-9);
        EXPECT_NEAR(v[k], expect, 0.01) << "t=" << t;
    }
}

TEST(TranTest, SinSourceAmplitude) {
    Netlist nl;
    nl.add<VSource>("vin", nl.node("in"), kGround, Waveform::sin(0.5, 0.25, 50e6));
    nl.add<Resistor>("r1", nl.node("in"), kGround, 50.0);
    TranOptions opt;
    opt.tstop = 100e-9;
    opt.dt = 0.1e-9;
    auto res = transient(nl, {"in"}, opt);
    const auto& v = res.wave("in");
    double vmin = 1e9, vmax = -1e9;
    for (double s : v) {
        vmin = std::min(vmin, s);
        vmax = std::max(vmax, s);
    }
    EXPECT_NEAR(vmax, 0.75, 1e-3);
    EXPECT_NEAR(vmin, 0.25, 1e-3);
}

TEST(TranTest, LcRingingFrequency) {
    // Parallel LC released from a charged capacitor rings at f0.
    Netlist nl;
    nl.add<Inductor>("l1", nl.node("t"), kGround, 10e-9);
    nl.add<Capacitor>("c1", nl.node("t"), kGround, 1e-12);
    nl.add<ISource>("kick", kGround, nl.node("t"),
                    Waveform::pwl({{0.0, 0.0}, {0.1e-9, 5e-3}, {0.2e-9, 0.0}}));
    TranOptions opt;
    opt.tstop = 40e-9;
    opt.dt = 2e-12;
    opt.record_start = 1e-9;
    auto res = transient(nl, {"t"}, opt);
    const auto& v = res.wave("t");
    // Count zero crossings to estimate the ringing frequency.
    int crossings = 0;
    for (size_t k = 1; k < v.size(); ++k)
        if ((v[k - 1] < 0) != (v[k] < 0)) ++crossings;
    const double duration = res.time.back() - res.time.front();
    const double f_est = crossings / (2.0 * duration);
    const double f0 = 1.0 / (kTwoPi * std::sqrt(10e-9 * 1e-12));
    EXPECT_NEAR(f_est, f0, 0.03 * f0);
}

TEST(TranTest, TrapezoidalBeatsBackwardEulerOnEnergy) {
    // BE damps an ideal LC tank; trapezoidal preserves amplitude.
    auto run = [&](int order) {
        Netlist nl;
        nl.add<Inductor>("l1", nl.node("t"), kGround, 10e-9);
        nl.add<Capacitor>("c1", nl.node("t"), kGround, 1e-12);
        nl.add<ISource>("kick", kGround, nl.node("t"),
                        Waveform::pwl({{0.0, 0.0}, {0.1e-9, 5e-3}, {0.2e-9, 0.0}}));
        TranOptions opt;
        opt.tstop = 50e-9;
        opt.dt = 5e-12;
        opt.order = order;
        opt.record_start = 45e-9;
        auto res = transient(nl, {"t"}, opt);
        double vmax = 0;
        for (double s : res.wave("t")) vmax = std::max(vmax, std::fabs(s));
        return vmax;
    };
    const double amp_trap = run(2);
    const double amp_be = run(1);
    EXPECT_GT(amp_trap, 3.0 * amp_be);
}

TEST(TranTest, VaractorChargeConservation) {
    // Drive a varactor with a sine through a resistor; average current must
    // settle to ~0 (no DC path through a capacitor).
    auto t = tech::generic180();
    Netlist nl;
    nl.add<VSource>("vin", nl.node("in"), kGround, Waveform::sin(0.9, 0.5, 100e6));
    nl.add<Resistor>("r1", nl.node("in"), nl.node("g"), 500.0);
    nl.add<Varactor>("var", nl.node("g"), kGround, t.varactor_model("nvar"), 200.0);
    TranOptions opt;
    opt.tstop = 100e-9;
    opt.dt = 20e-12;
    opt.record_start = 20e-9; // integer number of periods follows
    auto res = transient(nl, {"in", "g"}, opt);
    const auto& vin = res.wave("in");
    const auto& vg = res.wave("g");
    double iavg = 0.0;
    for (size_t k = 0; k < vin.size(); ++k) iavg += (vin[k] - vg[k]) / 500.0;
    iavg /= static_cast<double>(vin.size());
    EXPECT_NEAR(iavg, 0.0, 2e-6);
}

TEST(TranTest, RejectsBadOptions) {
    Netlist nl;
    nl.add<Resistor>("r1", nl.node("a"), kGround, 100.0);
    TranOptions opt;
    EXPECT_THROW(transient(nl, {"a"}, opt), Error);
    opt.tstop = 1e-9;
    opt.dt = 1e-12;
    EXPECT_THROW(transient(nl, {"nosuchnode"}, opt), Error);
}

struct RcCase {
    double r, c;
};

class RcPoleSweep : public ::testing::TestWithParam<RcCase> {};

TEST_P(RcPoleSweep, PoleAtExpectedFrequency) {
    const auto p = GetParam();
    Netlist nl;
    nl.add<VSource>("vin", nl.node("in"), kGround, Waveform::dc(0.0), AcSpec{1.0, 0.0});
    nl.add<Resistor>("r1", nl.node("in"), nl.node("out"), p.r);
    nl.add<Capacitor>("c1", nl.node("out"), kGround, p.c);
    auto xop = operating_point(nl);
    const double fpole = 1.0 / (kTwoPi * p.r * p.c);
    auto ac = ac_sweep(nl, {fpole}, xop);
    EXPECT_NEAR(std::abs(ac.at(0, nl.existing_node("out"))), 1.0 / std::sqrt(2.0), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Poles, RcPoleSweep,
                         ::testing::Values(RcCase{50.0, 1e-12}, RcCase{1e3, 1e-9},
                                           RcCase{1e6, 1e-6}, RcCase{10.0, 100e-15}));

} // namespace
} // namespace snim::sim
