#include <gtest/gtest.h>

#include <cmath>

#include "circuit/controlled.hpp"
#include "circuit/diode.hpp"
#include "circuit/netlist.hpp"
#include "circuit/passives.hpp"
#include "circuit/sources.hpp"
#include "rf/oscillator.hpp"
#include "rf/phase_noise.hpp"
#include "rf/spur.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace snim::rf {
namespace {

using namespace snim::circuit;
using snim::units::kTwoPi;

// Synthetic FM/AM-modulated carrier for demodulation tests.
std::vector<double> modulated_carrier(size_t n, double fs, double fc, double ac,
                                      double fn, double beta, double m,
                                      double dc = 0.0) {
    std::vector<double> x(n);
    for (size_t i = 0; i < n; ++i) {
        const double t = static_cast<double>(i) / fs;
        const double env = ac * (1.0 + m * std::cos(kTwoPi * fn * t));
        const double phase = kTwoPi * fc * t + beta * std::sin(kTwoPi * fn * t);
        x[i] = dc + env * std::cos(phase);
    }
    return x;
}

OscCapture make_capture(std::vector<double> wave, double fs, double fc, double ac,
                        double dc) {
    OscCapture cap;
    cap.wave = std::move(wave);
    cap.fs = fs;
    cap.fc = fc;
    cap.amplitude = ac;
    cap.mean = dc;
    return cap;
}

TEST(OscillatorToolsTest, InstantaneousFrequencyOfPureTone) {
    const double fs = 100e9, fc = 2.5e9;
    auto w = modulated_carrier(20000, fs, fc, 1.0, 1e6, 0.0, 0.0);
    auto inst = instantaneous_frequency(w, fs, 0.0);
    ASSERT_GT(inst.size(), 100u);
    for (size_t k = 10; k < inst.size() - 10; ++k)
        EXPECT_NEAR(inst[k].second, fc, 2e-4 * fc);
}

TEST(OscillatorToolsTest, EnvelopeOfAmCarrier) {
    const double fs = 100e9, fc = 2.0e9, fn = 20e6;
    auto w = modulated_carrier(50000, fs, fc, 0.8, fn, 0.0, 0.1);
    auto env = envelope(w, fs, 0.0);
    ASSERT_GT(env.size(), 100u);
    const auto fit = fit_tone(env, fn);
    EXPECT_NEAR(fit.offset, 0.8, 0.01);
    EXPECT_NEAR(fit.amplitude, 0.08, 0.008);
}

TEST(OscillatorToolsTest, ToneFitRecoversTrend) {
    std::vector<std::pair<double, double>> samples;
    const double f = 3e6;
    for (int i = 0; i < 400; ++i) {
        const double t = i * 1e-9;
        samples.emplace_back(t, 2.0 + 5e4 * t + 0.3 * std::cos(kTwoPi * f * t + 0.5));
    }
    const auto fit = fit_tone(samples, f);
    EXPECT_NEAR(fit.amplitude, 0.3, 1e-3);
    EXPECT_NEAR(fit.phase, 0.5, 1e-2);
    EXPECT_NEAR(fit.trend, 5e4, 2e3);
    EXPECT_NEAR(fit.offset, 2.0 + 5e4 * 200e-9, 0.01); // centred time origin
}

TEST(SpurTest, PureFmDemodulation) {
    const double fs = 200e9, fc = 3e9, fn = 10e6;
    const double beta = 2e-3;
    auto cap = make_capture(modulated_carrier(100000, fs, fc, 1.2, fn, beta, 0.0), fs,
                            fc, 1.2, 0.0);
    auto spur = measure_spur(cap, fn);
    EXPECT_NEAR(spur.freq_dev, beta * fn, 0.05 * beta * fn);
    // Pure FM: anti-symmetric sidebands of equal magnitude Ac*beta/2.
    EXPECT_NEAR(spur.left_amp, 0.5 * 1.2 * beta, 0.1 * 0.5 * 1.2 * beta);
    EXPECT_NEAR(spur.right_amp, spur.left_amp, 0.1 * spur.left_amp);
    EXPECT_LT(spur.am_dev, 0.1 * 1.2 * beta);
}

TEST(SpurTest, PureAmDemodulation) {
    const double fs = 200e9, fc = 3e9, fn = 10e6;
    const double m = 1e-3;
    auto cap = make_capture(modulated_carrier(100000, fs, fc, 1.0, fn, 0.0, m), fs, fc,
                            1.0, 0.0);
    auto spur = measure_spur(cap, fn);
    EXPECT_NEAR(spur.am_dev, m, 0.1 * m);
    EXPECT_NEAR(spur.left_amp, 0.5 * m, 0.15 * 0.5 * m);
    EXPECT_LT(spur.freq_dev, 0.2 * m * fn);
}

TEST(SpurTest, BasebandFeedthroughRejected) {
    // Additive tone at fn (direct coupling) must not read as FM/AM.
    const double fs = 200e9, fc = 3e9, fn = 10e6;
    auto w = modulated_carrier(100000, fs, fc, 1.0, fn, 0.0, 0.0);
    for (size_t i = 0; i < w.size(); ++i)
        w[i] += 5e-3 * std::cos(kTwoPi * fn * static_cast<double>(i) / fs);
    auto cap = make_capture(std::move(w), fs, fc, 1.0, 0.0);
    auto spur = measure_spur(cap, fn);
    EXPECT_LT(spur.left_amp, 1e-4);
    EXPECT_LT(spur.right_amp, 1e-4);
}

TEST(SpurTest, SpectralMatchesDemodOnSyntheticFm) {
    const double fs = 100e9, fc = 2.5e9, fn = 50e6;
    const double beta = 5e-3;
    auto cap = make_capture(modulated_carrier(1 << 16, fs, fc, 1.0, fn, beta, 0.0), fs,
                            fc, 1.0, 0.0);
    auto d = measure_spur(cap, fn);
    auto s = measure_spur_spectral(cap, fn);
    EXPECT_NEAR(d.left_dbc(), s.left_dbc(), 1.0);
    EXPECT_NEAR(d.right_dbc(), s.right_dbc(), 1.0);
}

TEST(SpurTest, CaptureTooShortThrows) {
    auto cap = make_capture(modulated_carrier(1000, 100e9, 2e9, 1.0, 1e6, 0, 0), 100e9,
                            2e9, 1.0, 0.0);
    EXPECT_THROW(measure_spur(cap, 1e4), Error); // < 1.5 periods in window
}

TEST(CaptureTest, VccsLcOscillator) {
    // Cross-coupled VCCS pair on an LC tank: a minimal oscillator the
    // capture pipeline must lock onto.  gm > 1/Rp for startup.
    Netlist nl;
    const auto a = nl.node("a");
    const auto b = nl.node("b");
    nl.add<Inductor>("la", a, kGround, 4e-9, 2.0);
    nl.add<Inductor>("lb", b, kGround, 4e-9, 2.0);
    nl.add<Capacitor>("ca", a, kGround, 1e-12);
    nl.add<Capacitor>("cb", b, kGround, 1e-12);
    // Cross-coupled negative resistance; anti-parallel diodes across the
    // tank clamp the amplitude (a linear model would grow without bound).
    nl.add<Vccs>("gma", a, kGround, b, kGround, 20e-3);
    nl.add<Vccs>("gmb", b, kGround, a, kGround, 20e-3);
    nl.add<Resistor>("rsat_a", a, kGround, 2000.0);
    nl.add<Resistor>("rsat_b", b, kGround, 2000.0);
    nl.add<Diode>("dlim1", a, b, DiodeModel{});
    nl.add<Diode>("dlim2", b, a, DiodeModel{});
    nl.add<ISource>("kick", kGround, a,
                    Waveform::pwl({{0.0, 0.0}, {0.05e-9, 2e-3}, {0.1e-9, 0.0}}));

    OscOptions opt;
    opt.probe_p = "a";
    opt.probe_n = "b";
    opt.dt = 5e-12;
    opt.settle = 10e-9;
    opt.capture = 30e-9;
    opt.f_min = 1e9;
    opt.f_max = 5e9;
    auto cap = capture_oscillator(nl, opt);
    // Hard diode clamping pulls the frequency well below the small-signal
    // LC resonance; the capture just has to lock onto the real oscillation.
    const double f0 = 1.0 / (units::kTwoPi * std::sqrt(4e-9 * 1e-12));
    EXPECT_GT(cap.fc, 0.5 * f0);
    EXPECT_LT(cap.fc, 1.1 * f0);
    EXPECT_GT(cap.amplitude, 0.01);
    EXPECT_EQ(cap.node_avg.size(), nl.unknown_count());
}

TEST(CaptureTest, NonOscillatingCircuitThrows) {
    Netlist nl;
    nl.add<VSource>("v1", nl.node("a"), kGround, Waveform::dc(1.0));
    nl.add<Resistor>("r1", nl.node("a"), nl.node("b"), 100.0);
    nl.add<Capacitor>("c1", nl.node("b"), kGround, 1e-12);
    OscOptions opt;
    opt.probe_p = "b";
    opt.settle = 1e-9;
    opt.capture = 5e-9;
    EXPECT_THROW(capture_oscillator(nl, opt), Error);
}

TEST(PhaseNoiseTest, QFromResonance) {
    // Synthetic Lorentzian-ish resonance with Q = 25.
    const double f0 = 1e9, q = 25.0;
    std::vector<double> freq, mag;
    for (double f = 0.8e9; f <= 1.2e9; f += 1e6) {
        const double x = 2.0 * q * (f - f0) / f0;
        freq.push_back(f);
        mag.push_back(1.0 / std::sqrt(1.0 + x * x));
    }
    EXPECT_NEAR(q_from_resonance(freq, mag), q, 0.05 * q);
}

TEST(PhaseNoiseTest, LeesonSlopes) {
    LeesonInputs in;
    in.fc = 3e9;
    in.q_loaded = 10.0;
    in.psig_dbm = 5.0;
    in.flicker_corner = 50e3;
    const double l100k = leeson_phase_noise(in, 100e3);
    const double l1m = leeson_phase_noise(in, 1e6);
    // -20 dB/dec in the 1/f^2 region.
    EXPECT_NEAR(l100k - l1m, 20.0, 2.5);
    // Order of magnitude sanity for a 3 GHz LC oscillator.
    EXPECT_LT(l100k, -80.0);
    EXPECT_GT(l100k, -130.0);
    EXPECT_THROW(leeson_phase_noise(in, -1.0), Error);
}

class FmBetaSweep : public ::testing::TestWithParam<double> {};

TEST_P(FmBetaSweep, DemodulationIsLinearInBeta) {
    const double beta = GetParam();
    const double fs = 200e9, fc = 3e9, fn = 20e6;
    auto cap = make_capture(modulated_carrier(80000, fs, fc, 1.0, fn, beta, 0.0), fs,
                            fc, 1.0, 0.0);
    auto spur = measure_spur(cap, fn);
    EXPECT_NEAR(spur.freq_dev, beta * fn, 0.08 * beta * fn + 200.0);
}

INSTANTIATE_TEST_SUITE_P(Betas, FmBetaSweep,
                         ::testing::Values(1e-4, 1e-3, 1e-2, 5e-2));

} // namespace
} // namespace snim::rf
