// Incremental transient-assembly suite (DESIGN.md §14).
//
// The contracts under test are bitwise, not approximate:
//   * TranAssembler's baseline-restore + nonlinear-overlay assembly must
//     reproduce `clear + assemble_tran` exactly — across iterations, step
//     attempts, (dt, order) cache keys, commits and forced relearns;
//   * SparseLU::refactor_partial must reproduce a full numeric refactor
//     exactly (unchanged columns would recompute to their stored values, so
//     skipping them cannot change anything downstream);
//   * with the Newton predictor disabled, the incremental engine's waveform
//     must be byte-identical to the legacy full-re-stamp engine whenever
//     the fresh-preferred guard keeps every iteration on fresh factors.
// Runs as its own binary (ctest label `perf`) because it arms global fault
// windows and asserts on the global registry.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "circuit/mosfet.hpp"
#include "circuit/netlist.hpp"
#include "circuit/passives.hpp"
#include "circuit/sources.hpp"
#include "circuit/stamp.hpp"
#include "numeric/newton_guard.hpp"
#include "numeric/sparse_lu.hpp"
#include "obs/registry.hpp"
#include "sim/assembly.hpp"
#include "sim/mna.hpp"
#include "sim/transient.hpp"
#include "tech/generic180.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

using namespace snim;

namespace {

class AssemblyTest : public ::testing::Test {
protected:
    void SetUp() override {
        fault::clear();
#if SNIM_OBS_ENABLED
        obs::reset();
        obs::set_enabled(false);
#endif
    }
    void TearDown() override {
        fault::clear();
#if SNIM_OBS_ENABLED
        obs::reset();
        obs::set_enabled(false);
#endif
    }
};

/// RC ladder with `nmos` MOSFETs tapping gates along it — the static
/// majority plus a small moving nonlinear set, like the paper testcases.
circuit::Netlist mixed_netlist(int stages, int nmos, Rng& rng) {
    circuit::Netlist nl;
    const tech::Technology t = tech::generic180();
    const tech::MosModelCard nch = t.mos_model("nch");
    nl.add<circuit::VSource>("vin", nl.node("n0"), circuit::kGround,
                             circuit::Waveform::sin(0.0, 0.5, 1e9));
    nl.add<circuit::VSource>("vdd", nl.node("vdd"), circuit::kGround,
                             circuit::Waveform::dc(1.8));
    for (int i = 0; i < stages; ++i) {
        nl.add<circuit::Resistor>(format("r%d", i), nl.node(format("n%d", i)),
                                  nl.node(format("n%d", i + 1)),
                                  10.0 + rng.uniform(0, 90));
        nl.add<circuit::Capacitor>(format("c%d", i), nl.node(format("n%d", i + 1)),
                                   circuit::kGround, 1e-13 * (1 + rng.uniform(0, 3)));
        // Floating coupling caps exercise the 4-entry compiled refresh
        // plan (grounded caps only have the 1-entry shape).
        if (i >= 2 && i % 3 == 0)
            nl.add<circuit::Capacitor>(format("cc%d", i),
                                       nl.node(format("n%d", i - 2)),
                                       nl.node(format("n%d", i + 1)),
                                       2e-14 * (1 + rng.uniform(0, 2)));
    }
    for (int m = 0; m < nmos; ++m) {
        nl.add<circuit::Resistor>(format("rd%d", m), nl.node("vdd"),
                                  nl.node(format("d%d", m)), 1e3);
        nl.add<circuit::Mosfet>(
            format("m%d", m), nl.node(format("d%d", m)),
            nl.node(format("n%d", 1 + (7 * m) % stages)), circuit::kGround,
            circuit::kGround, nch, circuit::MosGeometry{});
    }
    nl.finalize();
    return nl;
}

void expect_bitwise_equal(circuit::RealStamper& inc, circuit::RealStamper& ref,
                          const char* when) {
    const auto& iv = inc.csc().values();
    const auto& rv = ref.csc().values();
    ASSERT_EQ(iv.size(), rv.size()) << when;
    EXPECT_EQ(std::memcmp(iv.data(), rv.data(), iv.size() * sizeof(double)), 0)
        << "matrix diverged: " << when;
    EXPECT_EQ(std::memcmp(inc.rhs().data(), ref.rhs().data(),
                          inc.rhs().size() * sizeof(double)),
              0)
        << "rhs diverged: " << when;
}

// --- TranAssembler vs the full pass ---------------------------------------

TEST_F(AssemblyTest, IncrementalMatchesFullAssemblyAcrossRandomNetlists) {
    Rng rng(1234);
    for (int trial = 0; trial < 5; ++trial) {
        auto nl = mixed_netlist(10 + 5 * trial, 1 + trial % 3, rng);
        const size_t n = nl.unknown_count();
        const double gmin = 1e-12;

        circuit::RealStamper inc(n), ref(n);
        inc.enable_compiled_assembly();
        ref.enable_compiled_assembly();
        sim::TranAssembler asmb(nl, inc, gmin);

        circuit::TranParams tp;
        tp.order = 2;
        std::vector<double> x(n, 0.2);
        // Attempts cycle the retry-ladder dt set (cache keys) and commit
        // between them; iterations random-walk the nonlinear iterate (kept
        // positive so MOSFET orientations hold and no relearn triggers).
        const double dts[] = {10e-12, 5e-12, 10e-12, 2.5e-12, 10e-12};
        for (int a = 0; a < 5; ++a) {
            tp.dt = dts[a];
            tp.time = (a + 1) * 10e-12;
            asmb.begin_attempt(x, tp);
            for (int it = 0; it < 3; ++it) {
                for (size_t i = 0; i < n; ++i)
                    x[i] = 0.9 * x[i] + 0.05 * rng.uniform(0, 1);
                asmb.assemble(x, tp);
                ref.clear();
                sim::assemble_tran(nl, ref, x, tp, gmin);
                expect_bitwise_equal(
                    inc, ref,
                    format("trial %d attempt %d it %d", trial, a, it).c_str());
            }
            asmb.commit(x, tp);
        }
    }
}

#if SNIM_OBS_ENABLED
TEST_F(AssemblyTest, OrientationFlipForcesRelearnAndStaysBitIdentical) {
    obs::set_enabled(true);
    Rng rng(7);
    auto nl = mixed_netlist(12, 2, rng);
    const size_t n = nl.unknown_count();
    const double gmin = 1e-12;

    circuit::RealStamper inc(n), ref(n);
    inc.enable_compiled_assembly();
    ref.enable_compiled_assembly();
    sim::TranAssembler asmb(nl, inc, gmin);

    circuit::TranParams tp;
    tp.dt = 10e-12;
    tp.order = 2;
    std::vector<double> x(n, 0.5);
    asmb.begin_attempt(x, tp);
    asmb.assemble(x, tp);
    const std::uint64_t epoch0 = asmb.epoch();

    // Pull every node negative: MOSFET vds flips sign, the recorded stamp
    // sequence deviates mid-overlay and the assembler must relearn — and
    // still hand back exactly what the full pass would.
    for (size_t i = 0; i < n; ++i) x[i] = -0.5;
    asmb.assemble(x, tp);
    ref.clear();
    sim::assemble_tran(nl, ref, x, tp, gmin);
    expect_bitwise_equal(inc, ref, "after orientation flip");
    EXPECT_GT(asmb.epoch(), epoch0);
    EXPECT_GE(obs::counter_value("sim/assemble_relearn"), 1u);
}
#endif

// --- partial refactorization ----------------------------------------------

Triplets<double> random_system(size_t n, int extra_per_row, Rng& rng) {
    Triplets<double> t(n);
    for (size_t i = 0; i < n; ++i) t.add(i, i, 5.0 + rng.uniform(0, 1));
    for (size_t i = 0; i < n; ++i)
        for (int k = 0; k < extra_per_row; ++k)
            t.add(i, static_cast<size_t>(rng.uniform_int(0, static_cast<int>(n) - 1)),
                  rng.uniform(-1, 1));
    return t;
}

TEST_F(AssemblyTest, PartialRefactorMatchesFullRefactorBitwise) {
    Rng rng(42);
    for (int trial = 0; trial < 5; ++trial) {
        const size_t n = 30 + 10 * static_cast<size_t>(trial);
        auto t = random_system(n, 3, rng);
        SparseCSC<double> a1(t);

        // Perturb a handful of columns in place: the partial contract is
        // "identical outside changed_cols", which editing CSC values of a
        // copy guarantees structurally.
        std::vector<int> changed = {1, static_cast<int>(n) / 2,
                                    static_cast<int>(n) - 2};
        SparseCSC<double> a2 = a1;
        for (int c : changed) {
            const auto cp = a2.col_ptr();
            for (int p = cp[c]; p < cp[c + 1]; ++p)
                a2.values_mut()[static_cast<size_t>(p)] *= 1.0 + 0.1 * (c + 1);
        }

        SparseLU<double> partial(a1);
        SparseLU<double> full(a1);
        ASSERT_TRUE(partial.refactor_partial(a2, changed));
        ASSERT_TRUE(full.refactor(a2));

        std::vector<double> b(n);
        for (auto& v : b) v = rng.uniform(-1, 1);
        const auto xp = partial.solve(b);
        const auto xf = full.solve(b);
        EXPECT_EQ(std::memcmp(xp.data(), xf.data(), n * sizeof(double)), 0)
            << "trial " << trial;
        EXPECT_EQ(partial.factor_stats().min_pivot, full.factor_stats().min_pivot);
        EXPECT_EQ(partial.factor_stats().max_pivot, full.factor_stats().max_pivot);
    }
}

TEST_F(AssemblyTest, EmptyChangedSetPartialRefactorKeepsFactors) {
    Rng rng(3);
    auto t = random_system(40, 3, rng);
    SparseCSC<double> a(t);
    SparseLU<double> lu(a);
    std::vector<double> b(40, 1.0);
    const auto x0 = lu.solve(b);
    ASSERT_TRUE(lu.refactor_partial(a, {}));
    const auto x1 = lu.solve(b);
    EXPECT_EQ(std::memcmp(x0.data(), x1.data(), b.size() * sizeof(double)), 0);
}

#if SNIM_OBS_ENABLED
TEST_F(AssemblyTest, ReusableLuTakesPartialPathOnlyUnderMatchingKey) {
    obs::set_enabled(true);
    Rng rng(9);
    auto t = random_system(32, 3, rng);
    SparseCSC<double> a(t);
    std::vector<int> changed = {4, 20};

    ReusableLU<double> rlu{ReusableLU<double>::Options{}};
    ReusableLU<double>::RefactorHint hint;
    hint.key[0] = 0x1111;
    hint.changed_cols = &changed;
    rlu.factor(a, hint); // first factor under this key: full, adopts the key
    EXPECT_EQ(obs::counter_value("numeric/lu_partial_refactor"), 0u);

    rlu.factor(a, hint); // same key: partial closure refresh
    EXPECT_EQ(obs::counter_value("numeric/lu_partial_refactor"), 1u);

    hint.key[0] = 0x2222; // key change: factors of a different system
    rlu.factor(a, hint);
    EXPECT_EQ(obs::counter_value("numeric/lu_partial_refactor"), 1u);

    ReusableLU<double>::RefactorHint no_key; // zero key never arms partial
    rlu.factor(a, no_key);
    rlu.factor(a, no_key);
    EXPECT_EQ(obs::counter_value("numeric/lu_partial_refactor"), 1u);
}
#endif

// --- Jacobian reuse guard -------------------------------------------------

TEST_F(AssemblyTest, GuardRefactorsOnKeyChangeAndAge) {
    JacobianReuseGuard g({0.9, 3});
    JacobianReuseGuard::Key k1{0x10, 2, 1};
    JacobianReuseGuard::Key k2{0x20, 2, 1};
    EXPECT_TRUE(g.should_refactor(k1)); // no factors yet
    g.on_refactor(k1);
    EXPECT_FALSE(g.should_refactor(k1));
    EXPECT_TRUE(g.should_refactor(k2)); // dt changed
    for (int i = 0; i < 3; ++i) g.on_iteration(1e-3, /*reused=*/true);
    EXPECT_TRUE(g.should_refactor(k1)); // age cap
    g.on_refactor(k1);
    EXPECT_EQ(g.age(), 0);
}

TEST_F(AssemblyTest, GuardDetectsStallAndEndgame) {
    JacobianReuseGuard g({0.5, 32});
    g.on_refactor({1, 2, 3});
    EXPECT_FALSE(g.stalled(1.0)); // no reference yet
    g.on_iteration(1.0, true);
    EXPECT_FALSE(g.stalled(0.4)); // contracted by > theta
    EXPECT_TRUE(g.stalled(0.6));  // did not
    // Endgame: previous update within margin of tol predicts the accepting
    // iteration; begin_attempt clears the history so the first solve of the
    // next attempt can never predict from stale data.
    g.on_iteration(1e-7, true);
    EXPECT_TRUE(g.endgame(1e-6, 64.0));
    EXPECT_FALSE(g.endgame(1e-9, 64.0));
    g.begin_attempt();
    EXPECT_FALSE(g.endgame(1e-6, 64.0));
}

// --- transient engine integration -----------------------------------------

circuit::Netlist ladder_with_mosfet(int stages) {
    circuit::Netlist nl;
    const tech::Technology t = tech::generic180();
    const tech::MosModelCard nch = t.mos_model("nch");
    nl.add<circuit::VSource>("vin", nl.node("n0"), circuit::kGround,
                             circuit::Waveform::sin(0.9, 0.2, 2e8));
    nl.add<circuit::VSource>("vdd", nl.node("vdd"), circuit::kGround,
                             circuit::Waveform::dc(1.8));
    for (int i = 0; i < stages; ++i) {
        nl.add<circuit::Resistor>(format("r%d", i), nl.node(format("n%d", i)),
                                  nl.node(format("n%d", i + 1)), 100.0);
        nl.add<circuit::Capacitor>(format("c%d", i), nl.node(format("n%d", i + 1)),
                                   circuit::kGround, 2e-13);
    }
    nl.add<circuit::Resistor>("rd", nl.node("vdd"), nl.node("out"), 2e3);
    nl.add<circuit::Mosfet>("m0", nl.node("out"), nl.node(format("n%d", stages)),
                            circuit::kGround, circuit::kGround,
                            tech::generic180().mos_model("nch"),
                            circuit::MosGeometry{});
    nl.add<circuit::Capacitor>("cl", nl.node("out"), circuit::kGround, 1e-13);
    (void)nch;
    return nl;
}

TEST_F(AssemblyTest, GuardedEngineBitIdenticalToRefactorEveryIteration) {
    // With the predictor off and the nonlinear set a small fraction of the
    // matrix, the fresh-preferred guard keeps every default-config
    // iteration on fresh factors — so the guarded engine must produce the
    // exact bytes of a run with Jacobian reuse disabled outright (both on
    // incremental assembly, so the matrix and its ordering are identical).
    // This is the engine-level proof that partial refactorization and the
    // guard machinery are value-transparent.
    sim::TranOptions opt;
    opt.dt = 20e-12;
    opt.tstop = 4e-9;
    opt.newton_predictor = false;

    auto nl1 = ladder_with_mosfet(40);
    const auto guarded = sim::transient(nl1, {"out"}, opt);

    opt.newton_reuse_jacobian = false;
    auto nl2 = ladder_with_mosfet(40);
    const auto fresh = sim::transient(nl2, {"out"}, opt);

    ASSERT_EQ(guarded.time.size(), fresh.time.size());
    const auto& wi = guarded.wave("out");
    const auto& wf = fresh.wave("out");
    ASSERT_EQ(wi.size(), wf.size());
    EXPECT_EQ(std::memcmp(wi.data(), wf.data(), wi.size() * sizeof(double)), 0);
}

TEST_F(AssemblyTest, IncrementalEngineMatchesFullRestampWithinTolerance) {
    // The legacy engine keeps the seed's column ordering while the
    // incremental engine orders the nonlinear columns last, so the two are
    // deliberately NOT bitwise comparable — but both converge every step to
    // the same Newton tolerance, so the waveforms must agree well inside it.
    sim::TranOptions opt;
    opt.dt = 20e-12;
    opt.tstop = 4e-9;

    auto nl1 = ladder_with_mosfet(40);
    const auto incremental = sim::transient(nl1, {"out"}, opt);

    opt.incremental_assembly = false;
    opt.newton_reuse_jacobian = false;
    opt.newton_predictor = false;
    auto nl2 = ladder_with_mosfet(40);
    const auto full = sim::transient(nl2, {"out"}, opt);

    ASSERT_EQ(incremental.time.size(), full.time.size());
    const auto& wi = incremental.wave("out");
    const auto& wf = full.wave("out");
    ASSERT_EQ(wi.size(), wf.size());
    for (size_t k = 0; k < wi.size(); ++k)
        EXPECT_NEAR(wi[k], wf[k], 1e-6) << "sample " << k;
}

TEST_F(AssemblyTest, PredictorKeepsWaveformWithinNewtonTolerance) {
    sim::TranOptions opt;
    opt.dt = 20e-12;
    opt.tstop = 4e-9;

    auto nl1 = ladder_with_mosfet(40);
    const auto predicted = sim::transient(nl1, {"out"}, opt);

    opt.newton_predictor = false;
    auto nl2 = ladder_with_mosfet(40);
    const auto stepped = sim::transient(nl2, {"out"}, opt);

    ASSERT_EQ(predicted.time.size(), stepped.time.size());
    const auto& wp = predicted.wave("out");
    const auto& ws = stepped.wave("out");
    for (size_t k = 0; k < wp.size(); ++k)
        EXPECT_NEAR(wp[k], ws[k], 1e-6) << "sample " << k;
}

#if SNIM_OBS_ENABLED
TEST_F(AssemblyTest, DefaultRunDoesExactlyOneFullAssembly) {
    obs::set_enabled(true);
    sim::TranOptions opt;
    opt.dt = 20e-12;
    opt.tstop = 4e-9;
    auto nl = ladder_with_mosfet(40);
    (void)sim::transient(nl, {"out"}, opt);

    EXPECT_EQ(obs::counter_value("sim/assemble_full"), 1u);
    EXPECT_EQ(obs::counter_value("sim/assemble_relearn"), 0u);
    EXPECT_GT(obs::counter_value("sim/assemble_incremental"), 0u);
    EXPECT_GT(obs::counter_value("sim/assemble_cache_hits"), 0u);
    EXPECT_GT(obs::counter_value("numeric/lu_partial_refactor"), 0u);
}

#if SNIM_FAULTS_ENABLED
TEST_F(AssemblyTest, StaleJacobianFaultTripsCountedFallback) {
    // A MOSFET-dominated system (nonlinear columns are most of the matrix)
    // keeps the stale-reuse path active; the injected stall forces the
    // guarded fallback, which must refactor and finish the run cleanly.
    obs::set_enabled(true);
    circuit::Netlist nl;
    nl.add<circuit::VSource>("vin", nl.node("g"), circuit::kGround,
                             circuit::Waveform::sin(0.9, 0.3, 2e8));
    nl.add<circuit::VSource>("vdd", nl.node("vdd"), circuit::kGround,
                             circuit::Waveform::dc(1.8));
    nl.add<circuit::Resistor>("rd", nl.node("vdd"), nl.node("out"), 2e3);
    nl.add<circuit::Mosfet>("m0", nl.node("out"), nl.node("g"), circuit::kGround,
                            circuit::kGround, tech::generic180().mos_model("nch"),
                            circuit::MosGeometry{});
    nl.add<circuit::Capacitor>("cl", nl.node("out"), circuit::kGround, 5e-13);

    fault::arm(fault::parse_spec("tran.newton.stale_jacobian@2x5"));
    sim::TranOptions opt;
    opt.dt = 20e-12;
    opt.tstop = 4e-9;
    // Tight tolerances keep steps in Newton for several iterations, so the
    // mid-iteration updates sit above the endgame margin and the stale
    // path actually runs (the default tolerances converge too fast here).
    opt.vntol = 1e-9;
    opt.reltol = 1e-6;
    const auto res = sim::transient(nl, {"out"}, opt);

    EXPECT_GT(obs::counter_value("sim/jacobian_reuse"), 0u);
    EXPECT_GE(obs::counter_value("sim/jacobian_stale_fallbacks"), 1u);
    EXPECT_EQ(res.time.size(), res.wave("out").size());
    for (double v : res.wave("out")) EXPECT_TRUE(std::isfinite(v));
}
#endif
#endif

} // namespace
