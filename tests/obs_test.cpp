// Tests for the observability subsystem: registry counters/histograms,
// nested scoped phase timers, JSON report round-trip, log sink capture,
// and the disabled mode recording nothing.
//
// Built as its own ctest target (label "obs") so the whole group can be
// selected with `ctest -L obs`, and so the suite still compiles and passes
// with -DSNIM_ENABLE_OBS=OFF (data expectations are guarded, the API must
// remain callable).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "numeric/sparse_lu.hpp"
#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/log.hpp"

using namespace snim;

namespace {

class ObsTest : public ::testing::Test {
protected:
    void SetUp() override {
        obs::reset();
        obs::set_enabled(true);
    }
    void TearDown() override {
        obs::set_enabled(false);
        obs::reset();
    }
};

const obs::PhaseNode* child_named(const obs::PhaseNode& node, const std::string& name) {
    for (const auto& c : node.children)
        if (c.name == name) return &c;
    return nullptr;
}

} // namespace

TEST_F(ObsTest, CountersAccumulate) {
    obs::count("a/b");
    obs::count("a/b", 4);
    obs::count("other");
#if SNIM_OBS_ENABLED
    EXPECT_EQ(obs::counter_value("a/b"), 5u);
    EXPECT_EQ(obs::counter_value("other"), 1u);
#endif
    EXPECT_EQ(obs::counter_value("missing"), 0u);
}

TEST_F(ObsTest, CountersThreadSafeUnderHammer) {
    constexpr int kThreads = 4;
    constexpr int kPerThread = 50000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([] {
            for (int i = 0; i < kPerThread; ++i) {
                obs::count("hammer/shared");
                obs::record_value("hammer/value", static_cast<double>(i));
            }
        });
    }
    for (auto& th : threads) th.join();
#if SNIM_OBS_ENABLED
    EXPECT_EQ(obs::counter_value("hammer/shared"),
              static_cast<uint64_t>(kThreads) * kPerThread);
    const auto stats = obs::value_stats("hammer/value");
    ASSERT_TRUE(stats.has_value());
    EXPECT_EQ(stats->count, static_cast<uint64_t>(kThreads) * kPerThread);
    EXPECT_DOUBLE_EQ(stats->min, 0.0);
    EXPECT_DOUBLE_EQ(stats->max, kPerThread - 1);
#endif
}

TEST_F(ObsTest, ValueStatsQuantiles) {
    for (int i = 1; i <= 100; ++i) obs::record_value("v", static_cast<double>(i));
#if SNIM_OBS_ENABLED
    const auto s = obs::value_stats("v");
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(s->count, 100u);
    EXPECT_DOUBLE_EQ(s->sum, 5050.0);
    EXPECT_DOUBLE_EQ(s->mean, 50.5);
    EXPECT_NEAR(s->p50, 50.5, 1.0);
    EXPECT_NEAR(s->p95, 95.0, 1.5);
#else
    EXPECT_FALSE(obs::value_stats("v").has_value());
#endif
}

TEST_F(ObsTest, ValueStatsEmptyHistogram) {
    // A histogram nobody recorded into does not exist at all — nullopt, not
    // a zero-filled stats block.
    EXPECT_FALSE(obs::value_stats("never_recorded").has_value());
#if SNIM_OBS_ENABLED
    obs::record_value("v", 1.0);
    obs::reset();
    EXPECT_FALSE(obs::value_stats("v").has_value());
#endif
}

TEST_F(ObsTest, ValueStatsSingleSample) {
    obs::record_value("one", 42.5);
#if SNIM_OBS_ENABLED
    const auto s = obs::value_stats("one");
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(s->count, 1u);
    EXPECT_DOUBLE_EQ(s->min, 42.5);
    EXPECT_DOUBLE_EQ(s->max, 42.5);
    EXPECT_DOUBLE_EQ(s->mean, 42.5);
    // Every percentile of a one-sample distribution is that sample.
    EXPECT_DOUBLE_EQ(s->p50, 42.5);
    EXPECT_DOUBLE_EQ(s->p95, 42.5);
#endif
}

TEST_F(ObsTest, ValueStatsAllEqualSamples) {
    for (int i = 0; i < 1000; ++i) obs::record_value("flat", -3.25);
#if SNIM_OBS_ENABLED
    const auto s = obs::value_stats("flat");
    ASSERT_TRUE(s.has_value());
    EXPECT_EQ(s->count, 1000u);
    EXPECT_DOUBLE_EQ(s->min, -3.25);
    EXPECT_DOUBLE_EQ(s->max, -3.25);
    EXPECT_DOUBLE_EQ(s->mean, -3.25);
    EXPECT_DOUBLE_EQ(s->p50, -3.25);
    EXPECT_DOUBLE_EQ(s->p95, -3.25);
#endif
}

TEST_F(ObsTest, NestedScopedTimersFormTree) {
    {
        obs::ScopedTimer flow("flow/substrate_extract");
        { obs::ScopedTimer lu("numeric/lu_factor"); }
        { obs::ScopedTimer lu("numeric/lu_factor"); }
        { obs::ScopedTimer solve("numeric/lu_solve"); }
    }
    { obs::ScopedTimer flow("flow/stitch"); }

#if SNIM_OBS_ENABLED
    EXPECT_EQ(obs::phase_calls("flow/substrate_extract"), 1u);
    EXPECT_EQ(obs::phase_calls("flow/stitch"), 1u);
    EXPECT_EQ(obs::phase_calls("numeric/lu_factor"), 2u);
    EXPECT_EQ(obs::phase_calls("numeric/lu_solve"), 1u);

    // Parent inclusive time covers the nested children.
    EXPECT_GE(obs::phase_seconds("flow/substrate_extract"),
              obs::phase_seconds("numeric/lu_factor") +
                  obs::phase_seconds("numeric/lu_solve"));

    const obs::PhaseNode tree = obs::phase_tree();
    const auto* flow = child_named(tree, "flow");
    ASSERT_NE(flow, nullptr);
    EXPECT_EQ(flow->calls, 0u); // structural interior node
    ASSERT_NE(child_named(*flow, "substrate_extract"), nullptr);
    ASSERT_NE(child_named(*flow, "stitch"), nullptr);
    EXPECT_EQ(child_named(*flow, "substrate_extract")->calls, 1u);
    EXPECT_EQ(child_named(*flow, "substrate_extract")->path, "flow/substrate_extract");

    const auto* numeric = child_named(tree, "numeric");
    ASSERT_NE(numeric, nullptr);
    ASSERT_NE(child_named(*numeric, "lu_factor"), nullptr);
    EXPECT_EQ(child_named(*numeric, "lu_factor")->calls, 2u);
#endif
}

TEST_F(ObsTest, ScopedTimerStopIsIdempotent) {
    obs::ScopedTimer t("phase/x", obs::Timing::Always);
    const double first = t.stop();
    EXPECT_GE(first, 0.0);
    EXPECT_DOUBLE_EQ(t.stop(), first); // second stop reports the same time
#if SNIM_OBS_ENABLED
    EXPECT_EQ(obs::phase_calls("phase/x"), 1u); // destructor must not re-record
#endif
}

TEST_F(ObsTest, AlwaysTimingMeasuresWhenDisabled) {
    obs::set_enabled(false);
    obs::ScopedTimer t("phase/always", obs::Timing::Always);
    // Burn a little time so elapsed() is strictly positive.
    volatile double sink = 0.0;
    for (int i = 0; i < 10000; ++i) sink += static_cast<double>(i);
    EXPECT_GT(t.stop(), 0.0);
    EXPECT_EQ(obs::phase_calls("phase/always"), 0u); // measured but not recorded
}

TEST_F(ObsTest, DisabledModeRecordsNothing) {
    obs::set_enabled(false);
    obs::count("dead/counter", 7);
    obs::record_value("dead/value", 1.0);
    { obs::ScopedTimer t("dead/phase"); }
    EXPECT_EQ(obs::counter_value("dead/counter"), 0u);
    EXPECT_FALSE(obs::value_stats("dead/value").has_value());
    EXPECT_EQ(obs::phase_calls("dead/phase"), 0u);
    EXPECT_TRUE(obs::phase_tree().children.empty());
}

TEST_F(ObsTest, ResetClearsEverything) {
    obs::count("c");
    obs::record_value("v", 1.0);
    { obs::ScopedTimer t("p"); }
    obs::reset();
    EXPECT_EQ(obs::counter_value("c"), 0u);
    EXPECT_FALSE(obs::value_stats("v").has_value());
    EXPECT_EQ(obs::phase_calls("p"), 0u);
}

TEST_F(ObsTest, JsonReportRoundTrips) {
    obs::count("sim/transient/steps", 42);
    obs::record_value("numeric/lu_fill_nnz", 128.0);
    obs::record_value("numeric/lu_fill_nnz", 256.0);
    {
        obs::ScopedTimer outer("flow/substrate_extract");
        obs::ScopedTimer inner("numeric/lu_factor");
    }

    const std::string doc = obs::report_json().dump(2);
    const obs::Json parsed = obs::Json::parse(doc); // throws on malformed output

#if SNIM_OBS_ENABLED
    ASSERT_TRUE(parsed.contains("phases"));
    ASSERT_TRUE(parsed.contains("counters"));
    ASSERT_TRUE(parsed.contains("values"));
    EXPECT_EQ(parsed.at("counters").at("sim/transient/steps").as_number(), 42.0);
    EXPECT_EQ(parsed.at("phases_flat").at("numeric/lu_factor").at("calls").as_number(),
              1.0);
    const auto& fill = parsed.at("values").at("numeric/lu_fill_nnz");
    EXPECT_EQ(fill.at("count").as_number(), 2.0);
    EXPECT_EQ(fill.at("mean").as_number(), 192.0);

    // Dense single-line form parses identically.
    const obs::Json reparsed = obs::Json::parse(obs::report_json().dump(-1));
    EXPECT_EQ(reparsed.at("counters").at("sim/transient/steps").as_number(), 42.0);
#endif
}

TEST_F(ObsTest, TextReportListsPhasesAndCounters) {
    obs::count("sim/transient/steps", 3);
    { obs::ScopedTimer t("flow/substrate_extract"); }
    const std::string text = obs::report_text();
#if SNIM_OBS_ENABLED
    EXPECT_NE(text.find("substrate_extract"), std::string::npos);
    EXPECT_NE(text.find("sim/transient/steps"), std::string::npos);
#else
    EXPECT_TRUE(text.empty());
#endif
}

TEST(ObsJsonTest, ParsesScalarsContainersAndEscapes) {
    const obs::Json j = obs::Json::parse(
        R"({"a": [1, 2.5, -3e2, true, false, null], "s": "he\"llo\nA", "o": {}})");
    ASSERT_TRUE(j.is_object());
    const auto& arr = j.at("a").as_array();
    ASSERT_EQ(arr.size(), 6u);
    EXPECT_DOUBLE_EQ(arr[0].as_number(), 1.0);
    EXPECT_DOUBLE_EQ(arr[1].as_number(), 2.5);
    EXPECT_DOUBLE_EQ(arr[2].as_number(), -300.0);
    EXPECT_TRUE(arr[3].as_bool());
    EXPECT_FALSE(arr[4].as_bool());
    EXPECT_TRUE(arr[5].is_null());
    EXPECT_EQ(j.at("s").as_string(), "he\"llo\nA");
    EXPECT_TRUE(j.at("o").is_object());
}

TEST(ObsJsonTest, RejectsMalformedInput) {
    EXPECT_THROW(obs::Json::parse("{"), Error);
    EXPECT_THROW(obs::Json::parse("[1, ]"), Error);
    EXPECT_THROW(obs::Json::parse("\"unterminated"), Error);
    EXPECT_THROW(obs::Json::parse("{} trailing"), Error);
    EXPECT_THROW(obs::Json::parse("nul"), Error);
}

TEST(ObsJsonTest, QuoteEscapesControlCharacters) {
    EXPECT_EQ(obs::json_quote("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    const obs::Json round = obs::Json::parse(obs::json_quote(std::string("\x01\t ok")));
    EXPECT_EQ(round.as_string(), "\x01\t ok");
}

TEST(ObsLogTest, SinkCapturesFormattedMessages) {
    std::vector<std::pair<LogLevel, std::string>> captured;
    LogSink prev = set_log_sink([&](LogLevel level, std::string_view msg) {
        captured.emplace_back(level, std::string(msg));
    });
    const LogLevel prev_level = log_level();
    set_log_level(LogLevel::Debug);

    const size_t warns_before = log_emit_count(LogLevel::Warn);
    log_warn("pivot %d fell back to %s", 3, "partial");
    log_info("mesh has %d nodes", 42);
    set_log_level(LogLevel::Quiet);
    log_warn("suppressed");

    set_log_level(prev_level);
    set_log_sink(std::move(prev));

    ASSERT_EQ(captured.size(), 2u);
    EXPECT_EQ(captured[0].first, LogLevel::Warn);
    EXPECT_EQ(captured[0].second, "pivot 3 fell back to partial");
    EXPECT_EQ(captured[1].first, LogLevel::Info);
    EXPECT_EQ(captured[1].second, "mesh has 42 nodes");
    // Suppressed messages are neither sunk nor counted.
    EXPECT_EQ(log_emit_count(LogLevel::Warn), warns_before + 1);
}

#if SNIM_OBS_ENABLED
TEST(ObsIntegrationTest, SparseLuRecordsFactorAndFillIn) {
    obs::reset();
    obs::set_enabled(true);
    // A small SPD-ish system exercises factor + solve.
    Triplets<double> t(4);
    for (size_t i = 0; i < 4; ++i) t.add(i, i, 4.0);
    t.add(0, 1, 1.0);
    t.add(1, 0, 1.0);
    t.add(2, 3, 1.0);
    t.add(3, 2, 1.0);
    SparseLU<double> lu(t);
    lu.solve({1.0, 2.0, 3.0, 4.0});
    EXPECT_EQ(obs::phase_calls("numeric/lu_factor"), 1u);
    EXPECT_EQ(obs::phase_calls("numeric/lu_solve"), 1u);
    const auto fill = obs::value_stats("numeric/lu_fill_nnz");
    ASSERT_TRUE(fill.has_value());
    EXPECT_EQ(fill->count, 1u);
    EXPECT_DOUBLE_EQ(fill->max, static_cast<double>(lu.nnz()));
    obs::set_enabled(false);
    obs::reset();
}
#endif
