// Numerical-health observability: condition estimates vs exact dense
// condition numbers, componentwise backward error + iterative refinement,
// the accuracy-budget ledger, transient KCL audits, engine certificate
// sites, MOR reduction-error probes and the snim_report budget view.  Own
// binary (ctest label `obs`): it arms global fault windows and asserts on
// the process-global registry, ledger and event journal.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <limits>

#include "circuit/netlist.hpp"
#include "circuit/passives.hpp"
#include "circuit/sources.hpp"
#include "mor/elimination.hpp"
#include "numeric/certify.hpp"
#include "numeric/condest.hpp"
#include "numeric/dense.hpp"
#include "numeric/sparse.hpp"
#include "numeric/sparse_lu.hpp"
#include "numeric/vecops.hpp"
#include "obs/certify.hpp"
#include "obs/compare.hpp"
#include "obs/events.hpp"
#include "obs/registry.hpp"
#include "obs/timeseries.hpp"
#include "sim/ac.hpp"
#include "sim/op.hpp"
#include "sim/transient.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"

using namespace snim;

namespace {

class CertifyTest : public ::testing::Test {
protected:
    void SetUp() override {
        fault::clear();
#if SNIM_OBS_ENABLED
        obs::reset();
        obs::set_enabled(false);
        obs::set_events_active(false);
#endif
    }
    void TearDown() override {
        fault::clear();
#if SNIM_OBS_ENABLED
        obs::reset();
        obs::set_enabled(false);
        obs::set_events_active(false);
#endif
    }
};

/// Diagonally-dominant random sparse system in the shape of an MNA matrix.
Triplets<double> random_mna(Rng& rng, size_t n) {
    Triplets<double> t(n);
    for (size_t i = 0; i < n; ++i) t.add(i, i, 3.0 + rng.uniform(0, 1));
    for (int k = 0; k < static_cast<int>(4 * n); ++k)
        t.add(static_cast<size_t>(rng.uniform_int(0, static_cast<int>(n) - 1)),
              static_cast<size_t>(rng.uniform_int(0, static_cast<int>(n) - 1)),
              rng.uniform(-1, 1));
    return t;
}

/// Exact 1-norm reciprocal condition number via n dense inverse columns.
double exact_rcond(const DenseMatrix<double>& a) {
    const size_t n = a.rows();
    DenseLU<double> lu(a);
    double inv_norm = 0.0;
    for (size_t j = 0; j < n; ++j) {
        std::vector<double> e(n, 0.0);
        e[j] = 1.0;
        const std::vector<double> col = lu.solve(e);
        double s = 0.0;
        for (double v : col) s += std::fabs(v);
        inv_norm = std::max(inv_norm, s);
    }
    return 1.0 / (norm1(a) * inv_norm);
}

circuit::Netlist sine_rc_netlist() {
    circuit::Netlist nl;
    nl.add<circuit::VSource>("vin", nl.node("in"), circuit::kGround,
                             circuit::Waveform::sin(0.0, 1.0, 50e6));
    nl.add<circuit::Resistor>("r1", nl.node("in"), nl.node("out"), 1e3);
    nl.add<circuit::Capacitor>("c1", nl.node("out"), circuit::kGround, 1e-12);
    return nl;
}

// --- condition estimation -------------------------------------------------

TEST_F(CertifyTest, CondestBracketsExactRcondOnRandomMatrices) {
    Rng rng(41);
    for (int trial = 0; trial < 12; ++trial) {
        const size_t n = static_cast<size_t>(rng.uniform_int(4, 50));
        const Triplets<double> t = random_mna(rng, n);
        const SparseCSC<double> a(t);
        const SparseLU<double> lu(a);
        const double exact = exact_rcond(a.to_dense());
        const double est = lu.rcond_estimate();
        // Hager's power iteration LOWER-bounds ||A^-1||_1, so the derived
        // rcond UPPER-bounds the exact one (up to solve roundoff)...
        EXPECT_GE(est, exact * 0.99) << "n=" << n << " trial=" << trial;
        // ...and in practice lands within a small factor of it.
        EXPECT_LE(est, exact * 20.0) << "n=" << n << " trial=" << trial;
    }
}

TEST_F(CertifyTest, DenseAndSparseEstimatesAgree) {
    Rng rng(7);
    const Triplets<double> t = random_mna(rng, 24);
    const SparseCSC<double> a(t);
    const double sparse_est = SparseLU<double>(a).rcond_estimate();
    const double dense_est = DenseLU<double>(a.to_dense()).rcond_estimate();
    EXPECT_GT(dense_est, 0.0);
    EXPECT_NEAR(std::log10(sparse_est), std::log10(dense_est), 1.0);
}

TEST_F(CertifyTest, NearSingularSystemCollapsesRcond) {
    Triplets<double> t(2);
    t.add(0, 0, 1.0);
    t.add(0, 1, 1.0);
    t.add(1, 0, 1.0);
    t.add(1, 1, 1.0 + 1e-12); // rank deficient up to 1e-12
    const SparseLU<double> lu{SparseCSC<double>(t)};
    EXPECT_LT(lu.rcond_estimate(), 1e-9);

    Triplets<double> id(3);
    for (size_t i = 0; i < 3; ++i) id.add(i, i, 1.0);
    const SparseLU<double> eye{SparseCSC<double>(id)};
    EXPECT_GT(eye.rcond_estimate(), 0.1);
}

TEST_F(CertifyTest, FactorStatsCarryLazyRcond) {
    Triplets<double> t(3);
    for (size_t i = 0; i < 3; ++i) t.add(i, i, 2.0);
    const SparseLU<double> lu{SparseCSC<double>(t)};
    EXPECT_EQ(lu.factor_stats().rcond, 0.0); // lazy: unfilled until asked
    const double est = lu.rcond_estimate();
    EXPECT_GT(est, 0.0);
    EXPECT_EQ(lu.factor_stats().rcond, est);
}

// --- backward error and refinement ----------------------------------------

TEST_F(CertifyTest, BackwardErrorIsTinyOnHealthySolveAndSeesPerturbation) {
    Rng rng(11);
    const Triplets<double> t = random_mna(rng, 30);
    const SparseCSC<double> a(t);
    const SparseLU<double> lu(a);
    std::vector<double> b(30);
    for (double& v : b) v = rng.uniform(-1, 1);
    std::vector<double> x = lu.solve(b);
    const double omega = componentwise_backward_error(a, x, b);
    EXPECT_LT(omega, 1e-13);

    std::vector<double> bad = x;
    for (double& v : bad) v *= 1.0 + 1e-6;
    const double omega_bad = componentwise_backward_error(a, bad, b);
    EXPECT_GT(omega_bad, 1e-8);
    const double refined = refine_once(lu, a, bad, b);
    EXPECT_LT(refined, 1e-12); // one step on exact factors restores it
}

TEST_F(CertifyTest, CertifySolveRefinesOnlyWhenBreached) {
    Rng rng(13);
    const Triplets<double> t = random_mna(rng, 16);
    const SparseCSC<double> a(t);
    const SparseLU<double> lu(a);
    std::vector<double> b(16, 1.0);
    std::vector<double> x = lu.solve(b);
    const std::vector<double> x0 = x;

    obs::CertifyOptions opt;
    obs::SolveCertificate cert = certify_solve(lu, a, x, b, opt);
    EXPECT_FALSE(cert.breach);
    EXPECT_EQ(cert.refine_steps, 0);
    EXPECT_EQ(x, x0) << "clean solve must stay bit-identical";

    for (double& v : x) v *= 1.0 + 1e-5; // breach omega_max
    cert = certify_solve(lu, a, x, b, opt);
    EXPECT_EQ(cert.refine_steps, 1);
    EXPECT_LT(cert.omega, opt.omega_max);
    EXPECT_FALSE(cert.breach);

    for (double& v : x) v *= 1.0 + 1e-5;
    obs::CertifyOptions norefine = opt;
    norefine.refine = false;
    const std::vector<double> xkeep = x;
    cert = certify_solve(lu, a, x, b, norefine);
    EXPECT_TRUE(cert.breach);
    EXPECT_EQ(cert.refine_steps, 0);
    EXPECT_EQ(x, xkeep) << "refine=false must not touch the solution";
}

TEST_F(CertifyTest, ValidateCertifyOptionsNamesTheBadKnob) {
    obs::CertifyOptions opt;
    obs::validate_certify_options(opt, "Test"); // defaults pass
    opt.omega_max = 0.0;
    EXPECT_THROW(obs::validate_certify_options(opt, "Test"), Error);
    opt = {};
    opt.rcond_min = 1.5;
    EXPECT_THROW(obs::validate_certify_options(opt, "Test"), Error);
    opt = {};
    opt.max_refine_steps = 17;
    EXPECT_THROW(obs::validate_certify_options(opt, "Test"), Error);
    opt = {};
    opt.stride = 0;
    EXPECT_THROW(obs::validate_certify_options(opt, "Test"), Error);
}

#if SNIM_OBS_ENABLED

// --- the accuracy-budget ledger -------------------------------------------

TEST_F(CertifyTest, LedgerAggregationIsOrderIndependent) {
    obs::set_enabled(true);
    obs::budget_update("s", 1.0, 5.0, "V", true, "b");
    obs::budget_update("s", 2.0, 5.0, "V", true, "a");
    obs::budget_update("s", 2.0, 5.0, "V", true, "c");
    auto snap1 = obs::budget_snapshot();
    obs::budget_reset();
    obs::budget_update("s", 2.0, 5.0, "V", true, "c");
    obs::budget_update("s", 2.0, 5.0, "V", true, "a");
    obs::budget_update("s", 1.0, 5.0, "V", true, "b");
    auto snap2 = obs::budget_snapshot();
    ASSERT_EQ(snap1.size(), 1u);
    ASSERT_EQ(snap2.size(), 1u);
    EXPECT_EQ(snap1[0].worst, 2.0);
    EXPECT_EQ(snap1[0].detail, "a"); // exact tie -> lexicographic winner
    EXPECT_EQ(snap2[0].worst, snap1[0].worst);
    EXPECT_EQ(snap2[0].detail, snap1[0].detail);
    EXPECT_EQ(snap1[0].samples, 3u);
}

TEST_F(CertifyTest, LedgerMarginSignConvention) {
    obs::set_enabled(true);
    obs::budget_update("under", 1e-3, 1e-2, "A", true);   // headroom
    obs::budget_update("over", 1e-1, 1e-2, "A", true);    // breach
    obs::budget_update("rcond_ok", 1e-6, 1e-14, "1", false);  // lower-is-worse
    obs::budget_update("rcond_bad", 1e-16, 1e-14, "1", false);
    double margins[4] = {0, 0, 0, 0};
    uint64_t breaches[4] = {0, 0, 0, 0};
    for (const auto& e : obs::budget_snapshot()) {
        const int i = e.stage == "under"      ? 0
                      : e.stage == "over"     ? 1
                      : e.stage == "rcond_ok" ? 2
                                              : 3;
        margins[i] = e.margin_db;
        breaches[i] = e.breaches;
    }
    EXPECT_LT(margins[0], 0.0);
    EXPECT_NEAR(margins[1], 20.0, 1e-9); // 10x over -> +20 dB
    EXPECT_LT(margins[2], 0.0);
    EXPECT_GT(margins[3], 0.0);
    EXPECT_EQ(breaches[1], 1u);
    EXPECT_EQ(breaches[0], 0u);
    // Snapshot ranks worst margin first.
    const auto snap = obs::budget_snapshot();
    EXPECT_GE(snap.front().margin_db, snap.back().margin_db);
}

TEST_F(CertifyTest, RecordCertificateFeedsCountersLedgerAndJournal) {
    obs::set_enabled(true);
    obs::set_events_active(true);
    obs::CertifyOptions opt;
    obs::SolveCertificate clean;
    clean.omega = 1e-16;
    clean.rcond = 1e-3;
    obs::record_certificate("test", clean, opt);
    EXPECT_EQ(obs::counter_value("numeric/solve_certificates"), 1u);
    EXPECT_EQ(obs::counter_value("numeric/cert_breaches"), 0u);
    EXPECT_EQ(obs::certificate_breach_count(), 0u);

    obs::SolveCertificate bad;
    bad.omega = 1e-3;
    bad.rcond = 1e-16;
    bad.refine_steps = 1;
    bad.breach = true;
    obs::record_certificate("test", bad, opt);
    EXPECT_EQ(obs::counter_value("numeric/cert_breaches"), 1u);
    EXPECT_EQ(obs::counter_value("numeric/ir_refinement_steps"), 1u);
    EXPECT_EQ(obs::certificate_breach_count(), 1u);

    bool breach_stage = false, rcond_stage = false;
    for (const auto& e : obs::budget_snapshot()) {
        if (e.stage == "numeric/test/omega") breach_stage = e.margin_db > 0.0;
        if (e.stage == "numeric/test/rcond") rcond_stage = e.margin_db > 0.0;
    }
    EXPECT_TRUE(breach_stage);
    EXPECT_TRUE(rcond_stage);

    bool saw_event = false;
    for (const std::string& line : obs::event_tail())
        if (line.find("cert_breach") != std::string::npos) saw_event = true;
    EXPECT_TRUE(saw_event);

    obs::reset(); // reset() clears ledger + breach count via budget_reset()
    EXPECT_EQ(obs::certificate_breach_count(), 0u);
    EXPECT_TRUE(obs::budget_snapshot().empty());
}

// --- engine certificate sites ---------------------------------------------

TEST_F(CertifyTest, TransientKclAuditFeedsChannelsAndBudget) {
    obs::set_enabled(true);
    circuit::Netlist nl = sine_rc_netlist();
    sim::TranOptions opt;
    opt.dt = 1e-9;
    opt.tstop = 30e-9;
    opt.certify.stride = 1; // audit every accepted step
    sim::transient(nl, {"out"}, opt);

    const auto kcl = obs::value_stats("sim/kcl_worst_residual");
    ASSERT_TRUE(kcl.has_value());
    EXPECT_GT(kcl->count, 0u);
    EXPECT_LT(kcl->max, opt.kcl_max);
    EXPECT_TRUE(obs::ts_get("sim/transient/kcl_residual").has_value());
    EXPECT_GT(obs::counter_value("numeric/solve_certificates"), 0u);
    EXPECT_EQ(obs::counter_value("numeric/ir_refinement_steps"), 0u);
    EXPECT_EQ(obs::certificate_breach_count(), 0u);

    bool kcl_stage = false;
    for (const auto& e : obs::budget_snapshot())
        if (e.stage == "sim/kcl") {
            kcl_stage = true;
            EXPECT_LT(e.margin_db, 0.0);
            EXPECT_FALSE(e.detail.empty()); // worst node is named
        }
    EXPECT_TRUE(kcl_stage);
}

TEST_F(CertifyTest, CertificationLeavesWaveformsBitIdentical) {
    sim::TranOptions base;
    base.dt = 1e-9;
    base.tstop = 30e-9;

    circuit::Netlist n1 = sine_rc_netlist();
    sim::TranOptions off = base;
    off.certify.enabled = false;
    const sim::TranResult r_off = sim::transient(n1, {"out"}, off);

    obs::reset();
    obs::set_enabled(true);
    circuit::Netlist n2 = sine_rc_netlist();
    sim::TranOptions on = base;
    on.certify.stride = 1;
    const sim::TranResult r_on = sim::transient(n2, {"out"}, on);

    ASSERT_EQ(r_off.wave("out").size(), r_on.wave("out").size());
    EXPECT_EQ(r_off.wave("out"), r_on.wave("out"))
        << "clean-run certificates must not perturb results";
}

TEST_F(CertifyTest, OpSolveIsCertified) {
    obs::set_enabled(true);
    circuit::Netlist nl;
    nl.add<circuit::VSource>("v1", nl.node("a"), circuit::kGround,
                             circuit::Waveform::dc(1.0));
    nl.add<circuit::Resistor>("r1", nl.node("a"), nl.node("b"), 1e3);
    nl.add<circuit::Resistor>("r2", nl.node("b"), circuit::kGround, 1e3);
    sim::operating_point(nl);
    EXPECT_GE(obs::counter_value("numeric/solve_certificates"), 1u);
    EXPECT_EQ(obs::certificate_breach_count(), 0u);
}

TEST_F(CertifyTest, AcLedgerIsThreadCountIndependent) {
    const std::vector<double> freqs = logspace(1e3, 1e9, 25);

    auto run = [&](int threads) {
        obs::reset();
        obs::set_enabled(true);
        circuit::Netlist n2 = sine_rc_netlist();
        n2.finalize();
        sim::AcOptions opt;
        opt.threads = threads;
        opt.certify.stride = 2;
        sim::ac_sweep(n2, freqs, std::vector<double>(n2.unknown_count(), 0.0),
                      opt);
        return obs::budget_snapshot();
    };
    const auto s1 = run(1);
    const auto s4 = run(4);
    ASSERT_EQ(s1.size(), s4.size());
    ASSERT_FALSE(s1.empty());
    for (size_t i = 0; i < s1.size(); ++i) {
        EXPECT_EQ(s1[i].stage, s4[i].stage);
        EXPECT_EQ(s1[i].worst, s4[i].worst) << s1[i].stage;
        EXPECT_EQ(s1[i].samples, s4[i].samples) << s1[i].stage;
    }
}

#if SNIM_FAULTS_ENABLED

TEST_F(CertifyTest, InjectedBreachDrivesEventRefinementAndLedger) {
    obs::set_enabled(true);
    obs::set_events_active(true);
    fault::arm(fault::parse_spec("numeric.cert.breach@1"));

    circuit::Netlist nl = sine_rc_netlist();
    sim::TranOptions opt;
    opt.dt = 1e-9;
    opt.tstop = 30e-9;
    opt.certify.stride = 1;
    sim::transient(nl, {"out"}, opt);

    EXPECT_GE(obs::counter_value("numeric/cert_breaches"), 1u);
    EXPECT_GE(obs::counter_value("numeric/ir_refinement_steps"), 1u);
    EXPECT_GE(obs::certificate_breach_count(), 1u);

    bool saw_event = false;
    for (const std::string& line : obs::event_tail())
        if (line.find("cert_breach") != std::string::npos &&
            line.find("fault_injected") != std::string::npos)
            saw_event = true;
    EXPECT_TRUE(saw_event);

    bool omega_stage = false;
    for (const auto& e : obs::budget_snapshot())
        if (e.stage == "numeric/transient/omega") omega_stage = true;
    EXPECT_TRUE(omega_stage);
}

#endif // SNIM_FAULTS_ENABLED

// --- MOR reduction-error probes -------------------------------------------

TEST_F(CertifyTest, ReductionProbeSeparatesExactFromLossy) {
    // Star: 3 ports around one internal hub (Y-Delta transformable, so the
    // Schur reduction is exact).
    mor::RcNetwork net;
    net.node_count = 4;
    net.add_g(0, 3, 1e-3);
    net.add_g(1, 3, 2e-3);
    net.add_g(2, 3, 3e-3);
    net.add_g(3, -1, 1e-4);
    const std::vector<int> ports{0, 1, 2};

    const mor::RcNetwork reduced = mor::reduce_by_solve(net, ports);
    EXPECT_LT(mor::probe_reduction_error(net, reduced, ports), 1e-8);

    mor::RcNetwork lossy = reduced;
    ASSERT_FALSE(lossy.conductances.empty());
    lossy.conductances.pop_back(); // drop one coupling: visibly wrong model
    EXPECT_GT(mor::probe_reduction_error(net, lossy, ports), 1e-3);
}

// --- report plumbing ------------------------------------------------------

TEST_F(CertifyTest, BudgetTableAndBreachGateOnSyntheticReports) {
    auto scenario = [](double margin) {
        obs::JsonObject stage;
        stage.emplace("stage", "numeric/test/omega");
        stage.emplace("unit", "1");
        stage.emplace("worst", 1e-3);
        stage.emplace("threshold", 1e-8);
        stage.emplace("margin_db", margin);
        stage.emplace("samples", 4.0);
        stage.emplace("breaches", margin > 0.0 ? 1.0 : 0.0);
        obs::JsonArray budget;
        budget.emplace_back(std::move(stage));
        obs::JsonObject rt;
        rt.emplace("median_s", 1.0);
        obs::JsonObject s;
        s.emplace("name", "scenario_a");
        s.emplace("runtime", obs::Json(std::move(rt)));
        s.emplace("budget", obs::Json(std::move(budget)));
        obs::JsonArray scenarios;
        scenarios.emplace_back(std::move(s));
        obs::JsonObject root;
        root.emplace("schema_version", 4);
        root.emplace("scenarios", obs::Json(std::move(scenarios)));
        return obs::Json(std::move(root));
    };

    const obs::Json healthy = scenario(-120.0);
    const obs::Json breached = scenario(+12.0);

    EXPECT_FALSE(obs::budget_has_breach(healthy));
    EXPECT_TRUE(obs::budget_has_breach(breached));
    const std::string table = obs::budget_table(breached);
    EXPECT_NE(table.find("numeric/test/omega"), std::string::npos);
    EXPECT_NE(table.find("OVER"), std::string::npos);

    // diff: headroom -> breach must rank as a budget regression.
    const obs::ReportDiff d = obs::diff_reports(healthy, breached);
    bool regressed = false;
    for (const auto& m : d.metrics)
        if (m.metric == "budget/numeric/test/omega")
            regressed = m.verdict == obs::DiffVerdict::Regress;
    EXPECT_TRUE(regressed);
    EXPECT_TRUE(obs::diff_has_regression(d));
}

#endif // SNIM_OBS_ENABLED

} // namespace
