#include <gtest/gtest.h>

#include <cmath>

#include "circuit/passives.hpp"
#include "mor/elimination.hpp"
#include "mor/macromodel.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace snim::mor {
namespace {

TEST(RcNetworkTest, RejectsBadElements) {
    RcNetwork net;
    net.node_count = 3;
    EXPECT_THROW(net.add_g(0, 0, 1.0), Error);  // self loop
    EXPECT_THROW(net.add_g(0, 1, -1.0), Error); // negative
    EXPECT_THROW(net.add_g(5, 1, 1.0), Error);  // out of range
    net.add_g(0, 1, 0.0);                       // zero silently dropped
    EXPECT_TRUE(net.conductances.empty());
}

TEST(EliminationTest, SeriesChainCollapses) {
    // 0 -1ohm- 1 -1ohm- 2, ports {0, 2}: reduced must be a single 2-ohm link.
    RcNetwork net;
    net.node_count = 3;
    net.add_g(0, 1, 1.0);
    net.add_g(1, 2, 1.0);
    auto red = eliminate_internal(net, {0, 2});
    ASSERT_EQ(red.node_count, 2u);
    ASSERT_EQ(red.conductances.size(), 1u);
    EXPECT_NEAR(red.conductances[0].value, 0.5, 1e-12);
}

TEST(EliminationTest, StarBecomesDelta) {
    // Star centre 3 with arms to 0,1,2 (all 1 S): classic Y->Delta, each
    // pair gets 1/3 S.
    RcNetwork net;
    net.node_count = 4;
    net.add_g(0, 3, 1.0);
    net.add_g(1, 3, 1.0);
    net.add_g(2, 3, 1.0);
    auto red = eliminate_internal(net, {0, 1, 2});
    EXPECT_EQ(red.conductances.size(), 3u);
    for (const auto& e : red.conductances) EXPECT_NEAR(e.value, 1.0 / 3.0, 1e-12);
}

TEST(EliminationTest, GroundConductancePreserved) {
    // 0 -2S- 1 -4S- gnd, port {0}: driving-point G = (1/2 + 1/4)^-1 S ... =
    // series 2S and 4S = 4/3 S.
    RcNetwork net;
    net.node_count = 2;
    net.add_g(0, 1, 2.0);
    net.add_g(1, -1, 4.0);
    auto red = eliminate_internal(net, {0});
    ASSERT_EQ(red.conductances.size(), 1u);
    EXPECT_EQ(red.conductances[0].b, -1);
    EXPECT_NEAR(red.conductances[0].value, 4.0 / 3.0, 1e-12);
}

TEST(EliminationTest, PortMatrixExactOnRandomMesh) {
    // Random connected network: reduced port conductance matrix must equal
    // the dense Schur complement of the original.
    Rng rng(5);
    const size_t n = 40;
    RcNetwork net;
    net.node_count = n;
    // Ring for connectivity + random chords + a few ground legs.
    for (size_t i = 0; i < n; ++i)
        net.add_g(static_cast<int>(i), static_cast<int>((i + 1) % n),
                  0.5 + rng.uniform(0, 2));
    for (int k = 0; k < 60; ++k) {
        int a = rng.uniform_int(0, static_cast<int>(n) - 1);
        int b = rng.uniform_int(0, static_cast<int>(n) - 1);
        if (a != b) net.add_g(a, b, rng.uniform(0.1, 1.0));
    }
    net.add_g(3, -1, 0.7);
    net.add_g(17, -1, 1.3);

    const std::vector<int> ports{0, 5, 11, 23, 37};
    const auto gref = dense_port_conductance(net, ports);
    auto red = eliminate_internal(net, ports);
    // Build the reduced network's own port matrix (ports are all nodes now).
    std::vector<int> all_ports(ports.size());
    for (size_t i = 0; i < ports.size(); ++i) all_ports[i] = static_cast<int>(i);
    const auto gred = dense_port_conductance(red, all_ports);
    for (size_t i = 0; i < ports.size(); ++i)
        for (size_t j = 0; j < ports.size(); ++j)
            EXPECT_NEAR(gred[i][j], gref[i][j], 1e-9 * std::fabs(gref[i][i]) + 1e-12)
                << i << "," << j;
}

TEST(EliminationTest, CapacitanceConserved) {
    // Total capacitance must be preserved by the first-order lumping when
    // every node has a DC path to the ports.
    RcNetwork net;
    net.node_count = 4;
    net.add_g(0, 1, 1.0);
    net.add_g(1, 2, 1.0);
    net.add_g(2, 3, 1.0);
    net.add_c(1, -1, 10e-15);
    net.add_c(2, -1, 20e-15);
    net.add_c(0, -1, 1e-15);
    auto red = eliminate_internal(net, {0, 3});
    EXPECT_NEAR(total_capacitance(red), 31e-15, 1e-20);
}

TEST(EliminationTest, IsolatedInternalNodeDropped) {
    RcNetwork net;
    net.node_count = 3;
    net.add_g(0, 1, 1.0);
    // Node 2 has no connections at all.
    auto red = eliminate_internal(net, {0, 1});
    ASSERT_EQ(red.conductances.size(), 1u);
    EXPECT_NEAR(red.conductances[0].value, 1.0, 1e-12);
}

TEST(EliminationTest, DropToleranceShrinksModel) {
    Rng rng(9);
    const size_t n = 80;
    RcNetwork net;
    net.node_count = n;
    for (size_t i = 0; i < n; ++i)
        net.add_g(static_cast<int>(i), static_cast<int>((i + 1) % n), 1.0);
    for (int k = 0; k < 200; ++k) {
        int a = rng.uniform_int(0, static_cast<int>(n) - 1);
        int b = rng.uniform_int(0, static_cast<int>(n) - 1);
        if (a != b) net.add_g(a, b, rng.uniform(1e-4, 1.0));
    }
    const std::vector<int> ports{0, 10, 20, 30, 40, 50, 60, 70};
    auto exact = eliminate_internal(net, ports, 0.0);
    auto pruned = eliminate_internal(net, ports, 0.05);
    EXPECT_LE(pruned.conductances.size(), exact.conductances.size());
}

TEST(MacromodelTest, InstantiateIntoNetlist) {
    RcNetwork net;
    net.node_count = 2;
    net.add_g(0, 1, 0.01); // 100 ohm
    net.add_g(1, -1, 0.001);
    net.add_c(0, -1, 1e-12);
    circuit::Netlist nl;
    instantiate(net, nl, {"a", "b"}, "sub:");
    EXPECT_TRUE(nl.has_node("a"));
    EXPECT_TRUE(nl.has_node("b"));
    EXPECT_EQ(nl.device_count(), 3u);
    auto* r = nl.find_as<circuit::Resistor>("sub:r0");
    ASSERT_NE(r, nullptr);
    EXPECT_NEAR(r->resistance(), 100.0, 1e-9);
}

TEST(MacromodelTest, FloorsSkipTinyElements) {
    RcNetwork net;
    net.node_count = 2;
    net.add_g(0, 1, 1e-12); // below default 1 nS floor
    net.add_c(0, -1, 1e-21);
    circuit::Netlist nl;
    instantiate(net, nl, {"a", "b"}, "x:");
    EXPECT_EQ(nl.device_count(), 0u);
}

} // namespace
} // namespace snim::mor
