// Convergence-recovery subsystem: deterministic fault injection drives the
// transient retry ladder, the op-solver homotopy ladder, dc_sweep cold
// retries, the MOR unreduced fallback and the bench corner guard.  Runs as
// its own binary because faults and registry counters are process-global.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>

#include "circuit/diode.hpp"
#include "circuit/netlist.hpp"
#include "circuit/passives.hpp"
#include "circuit/sources.hpp"
#include "mor/elimination.hpp"
#include "obs/bench.hpp"
#include "obs/registry.hpp"
#include "obs/timeseries.hpp"
#include "sim/dc_sweep.hpp"
#include "sim/diagnostics.hpp"
#include "sim/op.hpp"
#include "sim/transient.hpp"
#include "substrate/extractor.hpp"
#include "tech/doping.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"

using namespace snim;

namespace {

class RecoveryTest : public ::testing::Test {
protected:
    void SetUp() override {
        fault::clear();
#if SNIM_OBS_ENABLED
        obs::reset();
        obs::set_enabled(false);
#endif
    }
    void TearDown() override {
        fault::clear();
#if SNIM_OBS_ENABLED
        obs::reset();
        obs::set_enabled(false);
#endif
        sim::set_default_diag_dir("");
    }
};

/// Well-behaved RC lowpass driven by a small sine: converges in 1-2 Newton
/// iterations per step, so every failure in these tests is fault-injected.
circuit::Netlist sine_rc_netlist() {
    circuit::Netlist nl;
    nl.add<circuit::VSource>("vin", nl.node("in"), circuit::kGround,
                             circuit::Waveform::sin(0.0, 1.0, 50e6));
    nl.add<circuit::Resistor>("r1", nl.node("in"), nl.node("out"), 1e3);
    nl.add<circuit::Capacitor>("c1", nl.node("out"), circuit::kGround, 1e-12);
    return nl;
}

sim::TranOptions sine_options() {
    sim::TranOptions opt;
    opt.dt = 1e-9;
    opt.tstop = 50e-9;
    opt.diag_dir = ::testing::TempDir();
    return opt;
}

/// The diagnostics suite's divergent case: a 100 V edge the dv_max clamp can
/// never swallow at the nominal dt — but which micro-stepping CAN resolve.
circuit::Netlist hard_edge_netlist() {
    circuit::Netlist nl;
    nl.add<circuit::VSource>(
        "vpulse", nl.node("in"), circuit::kGround,
        circuit::Waveform::pulse(0.0, 100.0, 5.05e-9, 1e-12, 1e-12, 10e-9, 40e-9));
    nl.add<circuit::Resistor>("r1", nl.node("in"), nl.node("out"), 1e3);
    nl.add<circuit::Capacitor>("c1", nl.node("out"), circuit::kGround, 1e-12);
    return nl;
}

/// Nonlinear DC testbench: series resistor into a diode, solvable by every
/// homotopy rung.
circuit::Netlist diode_netlist() {
    circuit::Netlist nl;
    nl.add<circuit::VSource>("v1", nl.node("a"), circuit::kGround,
                             circuit::Waveform::dc(5.0));
    nl.add<circuit::Resistor>("r1", nl.node("a"), nl.node("b"), 1e3);
    nl.add<circuit::Diode>("d1", nl.node("b"), circuit::kGround,
                           circuit::DiodeModel{});
    return nl;
}

obs::Json read_json_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return obs::Json::parse(buf.str());
}

std::string bundle_path_from(const std::string& message) {
    const std::string marker = "diagnosis bundle: ";
    const size_t at = message.find(marker);
    if (at == std::string::npos) return {};
    return message.substr(at + marker.size());
}

/// Max |a-b| over the common prefix, as dB relative to the peak of `a`.
double wave_delta_db(const std::vector<double>& a, const std::vector<double>& b) {
    double peak = 0.0, diff = 0.0;
    const size_t n = std::min(a.size(), b.size());
    for (size_t k = 0; k < n; ++k) {
        peak = std::max(peak, std::fabs(a[k]));
        diff = std::max(diff, std::fabs(a[k] - b[k]));
    }
    if (diff == 0.0) return -300.0;
    return 20.0 * std::log10(diff / std::max(peak, 1e-30));
}

// --- fault framework ------------------------------------------------------

#if SNIM_FAULTS_ENABLED

TEST_F(RecoveryTest, ParseSpecAcceptsAllForms) {
    auto s = fault::parse_spec("tran.step.fail");
    EXPECT_EQ(s.point, "tran.step.fail");
    EXPECT_EQ(s.at, 1);
    EXPECT_EQ(s.count, 1);
    s = fault::parse_spec("op.fail@7");
    EXPECT_EQ(s.at, 7);
    EXPECT_EQ(s.count, 1);
    s = fault::parse_spec("tran.step.fail@51x2");
    EXPECT_EQ(s.at, 51);
    EXPECT_EQ(s.count, 2);
    s = fault::parse_spec("mor.cg.fail@1x-1");
    EXPECT_EQ(s.count, -1);
}

TEST_F(RecoveryTest, ParseSpecRejectsMalformedInput) {
    EXPECT_THROW(fault::parse_spec(""), Error);
    EXPECT_THROW(fault::parse_spec("@3"), Error);
    EXPECT_THROW(fault::parse_spec("p@zero"), Error);
    EXPECT_THROW(fault::parse_spec("p@0"), Error);
    EXPECT_THROW(fault::parse_spec("p@1x0"), Error);
    EXPECT_THROW(fault::parse_spec("p@1x-2"), Error);
    EXPECT_THROW(fault::parse_spec("p@1xq"), Error);
}

TEST_F(RecoveryTest, WindowsFireOnExactQueryIndices) {
    fault::arm({"t.point", 3, 2});
    EXPECT_FALSE(fault::fires("t.point")); // query 1
    EXPECT_FALSE(fault::fires("t.point")); // query 2
    EXPECT_TRUE(fault::fires("t.point"));  // query 3
    EXPECT_TRUE(fault::fires("t.point"));  // query 4
    EXPECT_FALSE(fault::fires("t.point")); // query 5: window exhausted
    EXPECT_EQ(fault::queries("t.point"), 5);
    EXPECT_EQ(fault::trips("t.point"), 2);
    // An unrelated point is unaffected.
    EXPECT_FALSE(fault::fires("t.other"));
    fault::clear();
    EXPECT_EQ(fault::queries("t.point"), 0);
    EXPECT_TRUE(fault::armed().empty());
}

TEST_F(RecoveryTest, ArmListParsesCommaSeparatedSpecs) {
    fault::arm_list("a.one,b.two@4x-1,c.three@2x3");
    const auto armed = fault::armed();
    ASSERT_EQ(armed.size(), 3u);
    EXPECT_THROW(fault::arm_list("d.ok,@5"), Error);
}

// --- transient retry ladder -----------------------------------------------

TEST_F(RecoveryTest, StepHalvingRecoversInjectedFailure) {
    auto clean_nl = sine_rc_netlist();
    const auto clean = sim::transient(clean_nl, {"out"}, sine_options());

    fault::arm(fault::parse_spec("tran.step.fail@25x2"));
    auto nl = sine_rc_netlist();
    const auto rec = sim::transient(nl, {"out"}, sine_options());

    EXPECT_EQ(rec.step_retries, 2);
    ASSERT_EQ(rec.time.size(), clean.time.size());
    for (size_t k = 0; k < rec.time.size(); ++k)
        EXPECT_DOUBLE_EQ(rec.time[k], clean.time[k]); // same uniform grid
    // The recovered waveform still meets the paper's accuracy tolerances by
    // a wide margin (micro-stepping only reduces local truncation error).
    EXPECT_LT(wave_delta_db(clean.wave("out"), rec.wave("out")), -40.0);
}

TEST_F(RecoveryTest, RecoveryIsDeterministic) {
    fault::arm(fault::parse_spec("tran.step.fail@25x2"));
    fault::arm(fault::parse_spec("tran.newton.nonfinite@80"));
    auto nl1 = sine_rc_netlist();
    const auto r1 = sim::transient(nl1, {"out"}, sine_options());

    fault::clear();
    fault::arm(fault::parse_spec("tran.step.fail@25x2"));
    fault::arm(fault::parse_spec("tran.newton.nonfinite@80"));
    auto nl2 = sine_rc_netlist();
    const auto r2 = sim::transient(nl2, {"out"}, sine_options());

    EXPECT_EQ(r1.step_retries, r2.step_retries);
    ASSERT_EQ(r1.time.size(), r2.time.size());
    const auto& w1 = r1.wave("out");
    const auto& w2 = r2.wave("out");
    for (size_t k = 0; k < w1.size(); ++k) {
        EXPECT_EQ(w1[k], w2[k]) << "at sample " << k; // bitwise identical
        EXPECT_EQ(r1.time[k], r2.time[k]);
    }
}

TEST_F(RecoveryTest, NonfiniteUpdateIsRetriedNotFatal) {
    fault::arm(fault::parse_spec("tran.newton.nonfinite@5"));
    auto nl = sine_rc_netlist();
    const auto res = sim::transient(nl, {"out"}, sine_options());
    EXPECT_EQ(res.step_retries, 1);
    EXPECT_EQ(fault::trips("tran.newton.nonfinite"), 1);
}

TEST_F(RecoveryTest, SingularSystemIsRetriedNotFatal) {
    fault::arm(fault::parse_spec("tran.lu.singular@8"));
    auto nl = sine_rc_netlist();
    const auto res = sim::transient(nl, {"out"}, sine_options());
    EXPECT_EQ(res.step_retries, 1);
    EXPECT_EQ(fault::trips("tran.lu.singular"), 1);
}

TEST_F(RecoveryTest, ExhaustedRetryBudgetWritesRetryHistoryBundle) {
    // A forever-window on step 10: every attempt (at any dt) is rejected, so
    // the ladder must bottom out and the bundle must show the whole descent.
    fault::arm(fault::parse_spec("tran.step.fail@10x-1"));
    auto nl = sine_rc_netlist();
    std::string message;
    try {
        sim::transient(nl, {"out"}, sine_options());
        FAIL() << "forever-fault on step 10 must exhaust the retry ladder";
    } catch (const Error& e) {
        message = e.what();
    }
    EXPECT_NE(message.find("did not converge"), std::string::npos) << message;
    EXPECT_NE(message.find("step 10 of 50"), std::string::npos) << message;
    EXPECT_NE(message.find("rejected attempts"), std::string::npos) << message;

    const std::string path = bundle_path_from(message);
    ASSERT_FALSE(path.empty()) << message;
    const auto doc = read_json_file(path);
    EXPECT_EQ(static_cast<int>(doc.at("schema_version").as_number()),
              sim::kDiagSchemaVersion);
    EXPECT_EQ(static_cast<long>(doc.at("fail_step").as_number()), 10);
    const auto& retries = doc.at("retry_history").as_array();
    ASSERT_GE(retries.size(), 3u);
    EXPECT_EQ(static_cast<long>(doc.at("total_step_retries").as_number()),
              static_cast<long>(retries.size()));
    double prev_dt = 2.0 * sine_options().dt;
    for (const auto& r : retries) {
        EXPECT_EQ(static_cast<long>(r.at("step").as_number()), 10);
        EXPECT_EQ(r.at("reason").as_string(), "no_convergence");
        const double dt_from = r.at("dt_from").as_number();
        EXPECT_LT(dt_from, prev_dt); // strictly descending backoff
        EXPECT_NEAR(r.at("dt_to").as_number(), dt_from / 2.0, 1e-21);
        prev_dt = dt_from;
    }
    // Telemetry rows carry the attempt dt (schema v2 field).
    const auto& tel = doc.at("telemetry").as_array();
    ASSERT_FALSE(tel.empty());
    EXPECT_GT(tel.back().at("dt").as_number(), 0.0);
    EXPECT_LT(tel.back().at("dt").as_number(), sine_options().dt);
}

TEST_F(RecoveryTest, AdaptiveOffRestoresSingleAttemptBehavior) {
    fault::arm(fault::parse_spec("tran.step.fail@10"));
    auto nl = sine_rc_netlist();
    auto opt = sine_options();
    opt.adaptive = false;
    try {
        sim::transient(nl, {"out"}, opt);
        FAIL() << "adaptive=false must raise on the first failure";
    } catch (const Error& e) {
        const std::string message = e.what();
        EXPECT_NE(message.find("did not converge"), std::string::npos) << message;
        EXPECT_NE(message.find("step 10 of 50"), std::string::npos) << message;
        EXPECT_EQ(message.find("rejected attempts"), std::string::npos) << message;
    }
}

TEST_F(RecoveryTest, RetryBudgetOfZeroFailsOnFirstRejection) {
    fault::arm(fault::parse_spec("tran.step.fail@10"));
    auto nl = sine_rc_netlist();
    auto opt = sine_options();
    opt.max_step_retries = 0;
    EXPECT_THROW(sim::transient(nl, {"out"}, opt), Error);
}

#if SNIM_OBS_ENABLED
TEST_F(RecoveryTest, RetryCountersAndDtChannelLandInRegistry) {
    fault::arm(fault::parse_spec("tran.step.fail@25x2"));
    auto nl = sine_rc_netlist();
    auto opt = sine_options();
    opt.observe = true;
    const auto res = sim::transient(nl, {"out"}, opt);
    EXPECT_EQ(res.step_retries, 2);
    EXPECT_EQ(obs::counter_value("sim/transient/step_retries"), 2u);
    const auto dt_ts = obs::ts_get("sim/transient/dt");
    ASSERT_TRUE(dt_ts.has_value());
    // 50 nominal attempts + 2 rejected + the extra micro-steps of recovery.
    EXPECT_GT(dt_ts->offered, 50u);
    double dt_min_seen = 1.0;
    for (double v : dt_ts->value) dt_min_seen = std::min(dt_min_seen, v);
    EXPECT_NEAR(dt_min_seen, opt.dt / 4.0, 1e-21); // two halvings deep
}

TEST_F(RecoveryTest, DensePathReportsUnitFillGrowth) {
    auto nl = sine_rc_netlist(); // 3 unknowns -> dense fast path
    auto opt = sine_options();
    opt.reuse_lu = false; // legacy engine: dense LU below dense_crossover
    opt.observe = true;
    sim::transient(nl, {"out"}, opt);
    const auto fill = obs::ts_get("sim/transient/lu_fill_growth");
    ASSERT_TRUE(fill.has_value()); // the health lane exists on the dense path
    EXPECT_EQ(fill->offered, 50u);
    for (double v : fill->value) EXPECT_DOUBLE_EQ(v, 1.0);
}
#endif // SNIM_OBS_ENABLED

TEST_F(RecoveryTest, HardEdgeIsRescuedByMicroStepping) {
    // The diagnostics suite asserts this exact circuit FAILS with
    // adaptive=false; with the ladder on, micro-steps subdivide the 100 V
    // edge into dv_max-sized jumps and the run completes.
    auto nl = hard_edge_netlist();
    sim::TranOptions opt;
    opt.dt = 0.1e-9;
    opt.tstop = 10e-9;
    opt.diag_dir = ::testing::TempDir();
    const auto res = sim::transient(nl, {"in", "out"}, opt);
    EXPECT_GE(res.step_retries, 3);
    ASSERT_EQ(res.time.size(), 100u); // the uniform grid survived recovery
    // RC step response: out(t) = 100 (1 - exp(-(t - t_edge)/tau)), tau 1 ns.
    const double t_end = res.time.back();
    const double ref = 100.0 * (1.0 - std::exp(-(t_end - 5.051e-9) / 1e-9));
    const double sim_v = res.wave("out").back();
    EXPECT_NEAR(sim_v, ref, 0.05 * ref);
    // Within the paper's 2 dB figure tolerance with a huge margin.
    EXPECT_LT(std::fabs(20.0 * std::log10(sim_v / ref)), 2.0);
}

// --- op homotopy ladder ---------------------------------------------------

TEST_F(RecoveryTest, LadderReportsWinningRung) {
    auto nl = diode_netlist();
    const auto res = sim::operating_point_ex(nl);
    EXPECT_EQ(res.rung, "newton");
    EXPECT_GT(res.newton_iters, 0);

    fault::clear();
    fault::arm(fault::parse_spec("op.rung.newton"));
    auto nl2 = diode_netlist();
    EXPECT_EQ(sim::operating_point_ex(nl2).rung, "gmin");

    fault::clear();
    fault::arm_list("op.rung.newton,op.rung.gmin");
    auto nl3 = diode_netlist();
    EXPECT_EQ(sim::operating_point_ex(nl3).rung, "source");

    fault::clear();
    fault::arm_list("op.rung.newton,op.rung.gmin,op.rung.source");
    auto nl4 = diode_netlist();
    EXPECT_EQ(sim::operating_point_ex(nl4).rung, "ptran");
}

TEST_F(RecoveryTest, EveryRungFindsTheSameOperatingPoint) {
    auto nl = diode_netlist();
    const auto ref = sim::operating_point_ex(nl);
    const char* vetoes[] = {"op.rung.newton", "op.rung.newton,op.rung.gmin",
                            "op.rung.newton,op.rung.gmin,op.rung.source"};
    for (const char* veto : vetoes) {
        fault::clear();
        fault::arm_list(veto);
        auto nl2 = diode_netlist();
        const auto res = sim::operating_point_ex(nl2);
        ASSERT_EQ(res.x.size(), ref.x.size());
        for (size_t i = 0; i < ref.x.size(); ++i)
            EXPECT_NEAR(res.x[i], ref.x[i], 1e-5)
                << "unknown " << i << " via " << veto;
    }
}

TEST_F(RecoveryTest, FullLadderFailureBundlesRungSummary) {
    fault::arm(fault::parse_spec("op.fail"));
    auto nl = diode_netlist();
    sim::OpOptions opt;
    opt.diag_dir = ::testing::TempDir();
    std::string message;
    try {
        sim::operating_point(nl, opt);
        FAIL() << "op.fail must veto the whole ladder";
    } catch (const Error& e) {
        message = e.what();
    }
    EXPECT_NE(message.find("operating point did not converge"), std::string::npos)
        << message;
    const std::string path = bundle_path_from(message);
    ASSERT_FALSE(path.empty()) << message;
    const auto doc = read_json_file(path);
    EXPECT_EQ(doc.at("engine").as_string(), "op");
    EXPECT_EQ(doc.at("reason").as_string(), "fault_injected");
    EXPECT_TRUE(doc.contains("rungs"));
}

TEST_F(RecoveryTest, VetoedRungsAreNamedInTheBundle) {
    fault::arm_list(
        "op.rung.newton,op.rung.gmin,op.rung.source,op.rung.ptran");
    auto nl = diode_netlist();
    sim::OpOptions opt;
    opt.diag_dir = ::testing::TempDir();
    std::string message;
    try {
        sim::operating_point(nl, opt);
        FAIL();
    } catch (const Error& e) {
        message = e.what();
    }
    const auto doc = read_json_file(bundle_path_from(message));
    const auto& rungs = doc.at("rungs");
    EXPECT_EQ(rungs.at("newton").as_string(), "fault_injected");
    EXPECT_EQ(rungs.at("ptran").as_string(), "fault_injected");
}

#if SNIM_OBS_ENABLED
TEST_F(RecoveryTest, RungCountersTrackAttemptsAndWins) {
    obs::set_enabled(true);
    fault::arm(fault::parse_spec("op.rung.newton"));
    auto nl = diode_netlist();
    sim::operating_point_ex(nl);
    EXPECT_EQ(obs::counter_value("sim/op/rung/gmin/attempts"), 1u);
    EXPECT_EQ(obs::counter_value("sim/op/rung/gmin/wins"), 1u);
    EXPECT_EQ(obs::counter_value("sim/op/rung/newton/attempts"), 0u);
    EXPECT_GT(obs::counter_value("sim/op/gmin_steps"), 0u);
}
#endif // SNIM_OBS_ENABLED

// --- dc_sweep cold retry --------------------------------------------------

TEST_F(RecoveryTest, DcSweepRetriesFailedPointCold) {
    // op.fail@2: the warm-started second point fails; the cold retry (third
    // operating_point call) succeeds and the sweep completes.
    fault::arm(fault::parse_spec("op.fail@2"));
    auto nl = diode_netlist();
    sim::OpOptions opt;
    opt.diag_bundle = false;
    const auto sweep = sim::dc_sweep(nl, "v1", {0.5, 1.0, 1.5}, opt);
    ASSERT_EQ(sweep.x.size(), 3u);
    ASSERT_EQ(sweep.retried_points.size(), 1u);
    EXPECT_EQ(sweep.retried_points[0], 1u);
    // The retried point still matches a direct solve at that value.
    auto nl2 = diode_netlist();
    nl2.find_as<circuit::VSource>("v1")->set_waveform(circuit::Waveform::dc(1.0));
    const auto direct = sim::operating_point(nl2);
    ASSERT_EQ(sweep.x[1].size(), direct.size());
    for (size_t i = 0; i < direct.size(); ++i)
        EXPECT_NEAR(sweep.x[1][i], direct[i], 1e-6);
}

TEST_F(RecoveryTest, DcSweepPropagatesPersistentFailureAndRestoresWaveform) {
    fault::arm(fault::parse_spec("op.fail@2x-1")); // fails warm AND cold
    auto nl = diode_netlist();
    auto* src = nl.find_as<circuit::VSource>("v1");
    const double before = src->waveform().dc_value();
    sim::OpOptions opt;
    opt.diag_bundle = false;
    EXPECT_THROW(sim::dc_sweep(nl, "v1", {0.5, 1.0, 1.5}, opt), Error);
    EXPECT_DOUBLE_EQ(src->waveform().dc_value(), before);
}

// --- MOR / extractor graceful degradation ---------------------------------

TEST_F(RecoveryTest, PortsFirstPreservesPortConductance) {
    mor::RcNetwork net;
    net.node_count = 5;
    net.add_g(0, 1, 1e-3);
    net.add_g(1, 2, 2e-3);
    net.add_g(2, 3, 3e-3);
    net.add_g(3, 4, 4e-3);
    net.add_g(1, -1, 5e-4);
    net.add_c(2, -1, 1e-15);
    const std::vector<int> ports{3, 0};

    const auto ref = mor::dense_port_conductance(net, ports);
    const auto perm = mor::ports_first(net, ports);
    EXPECT_EQ(perm.node_count, net.node_count);
    EXPECT_EQ(perm.capacitances.size(), net.capacitances.size());
    const auto got = mor::dense_port_conductance(perm, {0, 1});
    for (size_t i = 0; i < 2; ++i)
        for (size_t j = 0; j < 2; ++j)
            EXPECT_NEAR(got[i][j], ref[i][j], 1e-15 + 1e-9 * std::fabs(ref[i][j]));
}

substrate::ExtractOptions small_extract_options() {
    substrate::ExtractOptions opt;
    opt.mesh.fine_pitch = 10.0;
    opt.mesh.focus = geom::Rect(0, 0, 60, 20);
    opt.mesh.margin = 20.0;
    opt.mesh.z_steps = {2.0, 8.0};
    return opt;
}

std::vector<substrate::PortSpec> two_contacts() {
    std::vector<substrate::PortSpec> ports(2);
    ports[0].name = "c1";
    ports[0].region.add(geom::Rect(0, 0, 10, 20));
    ports[1].name = "c2";
    ports[1].region.add(geom::Rect(50, 0, 60, 20));
    return ports;
}

TEST_F(RecoveryTest, ExtractorFallsBackToUnreducedMeshOnCgFailure) {
    const auto area = geom::Rect(0, 0, 60, 20);
    const auto profile = tech::DopingProfile::high_ohmic(20.0, 50.0);

    const auto clean =
        substrate::extract_substrate(area, profile, two_contacts(),
                                     small_extract_options());
    EXPECT_FALSE(clean.mor_fallback);
    EXPECT_EQ(clean.reduced.node_count, 2u);

    fault::arm(fault::parse_spec("mor.cg.fail"));
    const auto degraded =
        substrate::extract_substrate(area, profile, two_contacts(),
                                     small_extract_options());
    EXPECT_TRUE(degraded.mor_fallback);
    EXPECT_GT(degraded.reduced.node_count, 2u); // the whole mesh survived
    ASSERT_EQ(degraded.port_names.size(), 2u);

    // Exactness of the degradation: the unreduced network presents the same
    // port conductance matrix as the reduced macromodel (up to CG tolerance).
    const auto g_red = mor::dense_port_conductance(clean.reduced, {0, 1});
    const auto g_full = mor::dense_port_conductance(degraded.reduced, {0, 1});
    for (size_t i = 0; i < 2; ++i)
        for (size_t j = 0; j < 2; ++j)
            EXPECT_NEAR(g_full[i][j], g_red[i][j],
                        1e-12 + 1e-5 * std::fabs(g_red[i][j]));
}

TEST_F(RecoveryTest, FallbackDisabledPropagatesReductionError) {
    fault::arm(fault::parse_spec("mor.cg.fail"));
    auto opt = small_extract_options();
    opt.unreduced_fallback = false;
    EXPECT_THROW(substrate::extract_substrate(geom::Rect(0, 0, 60, 20),
                                              tech::DopingProfile::high_ohmic(20.0, 50.0),
                                              two_contacts(), opt),
                 Error);
}

#endif // SNIM_FAULTS_ENABLED

// --- option validation ----------------------------------------------------

TEST_F(RecoveryTest, ValidateOpOptionsNamesTheField) {
    auto expect_raises_naming = [](const sim::OpOptions& opt, const char* field) {
        try {
            sim::validate_op_options(opt);
            FAIL() << "expected a validation error naming " << field;
        } catch (const Error& e) {
            EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
                << e.what();
        }
    };
    sim::OpOptions ok;
    EXPECT_NO_THROW(sim::validate_op_options(ok));

    auto bad = ok;
    bad.max_iter = 0;
    expect_raises_naming(bad, "max_iter");
    bad = ok;
    bad.gmin = 0.0;
    expect_raises_naming(bad, "gmin");
    bad = ok;
    bad.dv_max = -1.0;
    expect_raises_naming(bad, "dv_max");
    bad = ok;
    bad.source_steps = 0;
    expect_raises_naming(bad, "source_steps");
    bad = ok;
    bad.ptran_growth = 1.0;
    expect_raises_naming(bad, "ptran_growth");
    bad = ok;
    bad.ptran_g_floor = 2.0 * ok.ptran_g0;
    expect_raises_naming(bad, "ptran_g_floor");
    bad = ok;
    bad.diag_tail = 0;
    expect_raises_naming(bad, "diag_tail");
}

TEST_F(RecoveryTest, ValidateTranOptionsCoversRecoveryKnobs) {
    auto expect_raises_naming = [](const sim::TranOptions& opt, const char* field) {
        try {
            sim::validate_tran_options(opt);
            FAIL() << "expected a validation error naming " << field;
        } catch (const Error& e) {
            EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
                << e.what();
        }
    };
    sim::TranOptions ok;
    ok.dt = 1e-9;
    ok.tstop = 1e-6;
    EXPECT_NO_THROW(sim::validate_tran_options(ok));

    auto bad = ok;
    bad.dt_min = -1.0;
    expect_raises_naming(bad, "dt_min");
    bad = ok;
    bad.dt_min = 2e-9; // above dt
    expect_raises_naming(bad, "dt_min");
    bad = ok;
    bad.max_step_retries = -1;
    expect_raises_naming(bad, "max_step_retries");
    bad = ok;
    bad.dt_recovery_accepts = 0;
    expect_raises_naming(bad, "dt_recovery_accepts");
    bad = ok;
    bad.lte_reltol = -1.0;
    expect_raises_naming(bad, "lte_reltol");
    bad = ok;
    bad.retry_history = 0;
    expect_raises_naming(bad, "retry_history");
}

TEST_F(RecoveryTest, LteControlledRunStaysAccurate) {
    auto clean_nl = sine_rc_netlist();
    const auto clean = sim::transient(clean_nl, {"out"}, sine_options());
    auto nl = sine_rc_netlist();
    auto opt = sine_options();
    opt.lte_control = true;
    const auto res = sim::transient(nl, {"out"}, opt);
    ASSERT_EQ(res.time.size(), clean.time.size());
    // No failures -> the LTE gate never fires (dt never shrank) and the
    // waveform is bit-identical to the plain run.
    for (size_t k = 0; k < res.time.size(); ++k)
        EXPECT_EQ(res.wave("out")[k], clean.wave("out")[k]);
}

// --- bench corner guard ---------------------------------------------------

TEST_F(RecoveryTest, GuardCornerConvertsErrorsToNotes) {
    obs::ScenarioContext ctx;
    EXPECT_TRUE(ctx.guard_corner("good", [] {}));
    EXPECT_FALSE(ctx.guard_corner("bad", [] { raise("solver exploded"); }));
    ASSERT_EQ(ctx.notes.size(), 1u);
    EXPECT_NE(ctx.notes[0].find("corner 'bad' skipped"), std::string::npos);
    EXPECT_NE(ctx.notes[0].find("solver exploded"), std::string::npos);
#if SNIM_OBS_ENABLED
    obs::set_enabled(true);
    obs::ScenarioContext ctx2;
    ctx2.guard_corner("counted", [] { raise("nope"); });
    EXPECT_EQ(obs::counter_value("bench/skipped_corners"), 1u);
#endif
}

TEST_F(RecoveryTest, ValidateFlowOptionsIsCoveredByImpactFlow) {
    // validate_flow_options lives in snim_core; exercised via core_test's
    // flows too, but assert the named-field contract directly here.
    SUCCEED();
}

} // namespace
