#include <gtest/gtest.h>

#include <cmath>

#include "circuit/passives.hpp"
#include "circuit/sources.hpp"
#include "mor/macromodel.hpp"
#include "sim/op.hpp"
#include "substrate/analytic.hpp"
#include "substrate/extractor.hpp"
#include "substrate/mesh.hpp"
#include "substrate/ports.hpp"
#include "tech/generic180.hpp"
#include "util/error.hpp"

namespace snim::substrate {
namespace {

namespace L = snim::tech::layers;

TEST(MeshTest, GradedEdgesCoverInterval) {
    auto e = graded_edges(0.0, 100.0, 40.0, 60.0, 5.0, 1.5, 30.0, 100);
    EXPECT_DOUBLE_EQ(e.front(), 0.0);
    EXPECT_DOUBLE_EQ(e.back(), 100.0);
    for (size_t i = 1; i < e.size(); ++i) EXPECT_GT(e[i], e[i - 1]);
    // Fine region is meshed at the fine pitch.
    for (size_t i = 1; i < e.size(); ++i) {
        if (e[i - 1] >= 40.0 && e[i] <= 60.0) EXPECT_LE(e[i] - e[i - 1], 5.0 + 1e-9);
    }
}

TEST(MeshTest, GradedEdgesRespectCellCap) {
    auto e = graded_edges(0.0, 1000.0, 0.0, 1000.0, 1.0, 1.3, 5.0, 64);
    EXPECT_LE(e.size(), 65u);
    EXPECT_DOUBLE_EQ(e.front(), 0.0);
    EXPECT_DOUBLE_EQ(e.back(), 1000.0);
}

TEST(MeshTest, GeometryAndIndexing) {
    MeshOptions opt;
    opt.fine_pitch = 10.0;
    opt.growth = 1.5;
    opt.focus = geom::Rect(0, 0, 40, 30);
    opt.z_steps = {1.0, 2.0};
    opt.margin = 0.0;
    Mesh mesh(geom::Rect(0, 0, 40, 30), tech::DopingProfile::high_ohmic(20, 30), opt);
    EXPECT_EQ(mesh.nx(), 4);
    EXPECT_EQ(mesh.ny(), 3);
    EXPECT_EQ(mesh.node_count(), 4u * 3u * 2u);
    EXPECT_EQ(mesh.node(0, 0, 0), 0);
    EXPECT_EQ(mesh.node(3, 2, 1), 23);
    EXPECT_THROW(mesh.node(4, 0, 0), Error);
}

TEST(MeshTest, SurfaceOverlapAreas) {
    MeshOptions opt;
    opt.fine_pitch = 10.0;
    opt.focus = geom::Rect(0, 0, 40, 40);
    opt.z_steps = {5.0};
    opt.margin = 0.0;
    Mesh mesh(geom::Rect(0, 0, 40, 40), tech::DopingProfile::high_ohmic(20, 5), opt);
    // A rect covering exactly one cell.
    auto ov = mesh.surface_overlap(geom::Rect(0, 0, 10, 10));
    ASSERT_EQ(ov.size(), 1u);
    EXPECT_NEAR(ov[0].second, 100.0, 1e-9);
    // A rect straddling 4 cells equally.
    ov = mesh.surface_overlap(geom::Rect(5, 5, 15, 15));
    ASSERT_EQ(ov.size(), 4u);
    for (auto [node, a] : ov) EXPECT_NEAR(a, 25.0, 1e-9);
}

TEST(MeshTest, NetworkIsConnected) {
    MeshOptions opt;
    opt.fine_pitch = 10.0;
    opt.focus = geom::Rect(0, 0, 30, 30);
    opt.z_steps = {1.0, 4.0};
    opt.margin = 0.0;
    Mesh mesh(geom::Rect(0, 0, 30, 30), tech::DopingProfile::high_ohmic(20, 5), opt);
    // 3x3x2 grid: x-links 12, y-links 12, z-links 9 -> 33 conductances.
    EXPECT_EQ(mesh.network().conductances.size(), 33u);
    // High-ohmic profile: no backside ground legs.
    for (const auto& e : mesh.network().conductances) EXPECT_GE(e.b, 0);
}

TEST(MeshTest, EpiBacksideGrounded) {
    MeshOptions opt;
    opt.fine_pitch = 10.0;
    opt.focus = geom::Rect(0, 0, 30, 30);
    opt.z_steps = {1.0, 4.0};
    opt.margin = 0.0;
    Mesh mesh(geom::Rect(0, 0, 30, 30), tech::DopingProfile::epi(), opt);
    size_t ground_legs = 0;
    for (const auto& e : mesh.network().conductances)
        if (e.b < 0) ++ground_legs;
    EXPECT_EQ(ground_legs, 9u);
}

TEST(AnalyticTest, SpreadingResistanceFormulas) {
    // 20 ohm cm, 10 um disc: R = 0.2 / (4 * 10e-6) = 5000 ohm.
    EXPECT_NEAR(disc_spreading_resistance(20.0, 10.0), 5000.0, 1e-9);
    EXPECT_NEAR(equivalent_disc_radius(10.0, 10.0), 5.6419, 1e-3);
    EXPECT_NEAR(potential_ratio_at_distance(10.0, 100.0), 0.0637, 1e-3);
    EXPECT_GT(two_contact_resistance(20.0, 10.0, 100.0), 0.0);
}

TEST(ExtractorTest, TwoContactResistanceMatchesAnalytic) {
    // Two 20x20 um contacts 150 um apart on a 20 ohm cm wafer; FDM with a
    // coarse grid should land within ~35% of the analytic estimate.
    const double rho = 20.0;
    ExtractOptions opt;
    opt.mesh.fine_pitch = 8.0;
    opt.mesh.focus = geom::Rect(-20, -20, 190, 40);
    opt.mesh.margin = 80.0;

    std::vector<PortSpec> ports(2);
    ports[0].name = "c1";
    ports[0].region.add(geom::Rect(0, 0, 20, 20));
    ports[0].contact_resistance = 1e-3; // ideal contact: spreading R only
    ports[1].name = "c2";
    ports[1].region.add(geom::Rect(150, 0, 170, 20));
    ports[1].contact_resistance = 1e-3;

    auto model = extract_substrate(geom::Rect(0, 0, 170, 20),
                                   tech::DopingProfile::high_ohmic(rho, 250.0), ports, opt);
    ASSERT_EQ(model.reduced.node_count, 2u);
    // Port-to-port resistance from the reduced conductances.
    double g12 = 0.0;
    for (const auto& e : model.reduced.conductances)
        if (e.b >= 0) g12 += e.value;
    ASSERT_GT(g12, 0.0);
    const double r12 = 1.0 / g12;
    const double a = equivalent_disc_radius(20.0, 20.0);
    const double ref = two_contact_resistance(rho, a, 160.0);
    EXPECT_NEAR(r12, ref, 0.35 * ref) << "fdm=" << r12 << " analytic=" << ref;
}

TEST(ExtractorTest, AttenuationDecaysWithDistance) {
    // Probe ports at increasing distance from an injector: the transfer
    // (voltage divider vs a far ground ring) must decay monotonically.
    ExtractOptions opt;
    opt.mesh.fine_pitch = 10.0;
    opt.mesh.focus = geom::Rect(-70, -70, 270, 130);
    opt.mesh.margin = 60.0;

    std::vector<PortSpec> ports;
    PortSpec inj;
    inj.name = "sub";
    inj.region.add(geom::Rect(0, 0, 20, 20));
    inj.contact_resistance = 1.0;
    ports.push_back(inj);
    PortSpec ring;
    ring.name = "gr";
    ring.region = geom::Region(geom::make_ring(geom::Rect(-60, -60, 260, 120), 10.0));
    ring.contact_resistance = 0.5;
    ports.push_back(ring);
    for (int k = 0; k < 3; ++k) {
        PortSpec probe;
        probe.name = "p" + std::to_string(k);
        const double x = 60.0 + 60.0 * k;
        probe.region.add(geom::Rect(x, 0, x + 10, 10));
        probe.kind = PortKind::Probe;
        ports.push_back(probe);
    }
    auto model = extract_substrate(geom::Rect(-60, -60, 260, 120),
                                   tech::DopingProfile::high_ohmic(), ports, opt);

    // Solve the reduced network: 1 V on "sub", ground ring at 0.
    circuit::Netlist nl;
    mor::instantiate(model.reduced, nl, model.port_names, "s:");
    nl.add<circuit::VSource>("vsub", nl.existing_node("sub"), circuit::kGround,
                             circuit::Waveform::dc(1.0));
    nl.add<circuit::Resistor>("rgr", nl.existing_node("gr"), circuit::kGround, 1e-3);
    auto x = sim::operating_point(nl);
    const double v0 = circuit::volt(x, nl.existing_node("p0"));
    const double v1 = circuit::volt(x, nl.existing_node("p1"));
    const double v2 = circuit::volt(x, nl.existing_node("p2"));
    EXPECT_GT(v0, v1);
    EXPECT_GT(v1, v2);
    EXPECT_GT(v2, 0.0);
    EXPECT_LT(v0, 1.0);
}

TEST(ExtractorTest, PortOutsideAreaThrows) {
    std::vector<PortSpec> ports(1);
    ports[0].name = "far";
    ports[0].region.add(geom::Rect(1e5, 1e5, 1e5 + 10, 1e5 + 10));
    ExtractOptions opt;
    opt.mesh.fine_pitch = 15.0;
    EXPECT_THROW(extract_substrate(geom::Rect(0, 0, 100, 100),
                                   tech::DopingProfile::high_ohmic(), ports, opt),
                 Error);
}

TEST(ExtractorTest, CapacitivePortHasNoDcPath) {
    ExtractOptions opt;
    opt.mesh.fine_pitch = 12.0;
    opt.mesh.margin = 20.0;
    std::vector<PortSpec> ports(2);
    ports[0].name = "tap";
    ports[0].region.add(geom::Rect(0, 0, 10, 10));
    ports[0].contact_resistance = 2.0;
    ports[1].name = "well";
    ports[1].region.add(geom::Rect(40, 40, 80, 80));
    ports[1].kind = PortKind::Capacitive;
    ports[1].cap_per_area = 0.08e-15;
    auto model = extract_substrate(geom::Rect(0, 0, 100, 100),
                                   tech::DopingProfile::high_ohmic(), ports, opt);
    // The well port (index 1) must appear only in capacitances.
    for (const auto& e : model.reduced.conductances) {
        EXPECT_NE(e.a, 1);
        EXPECT_NE(e.b, 1);
    }
    double cwell = 0.0;
    for (const auto& e : model.reduced.capacitances)
        if (e.a == 1 || e.b == 1) cwell += e.value;
    // 40x40 um2 * 0.08 aF/um2 = 128 fF... (0.08e-15 F/um^2 * 1600 um^2).
    EXPECT_NEAR(cwell, 0.08e-15 * 1600.0, 0.1e-15);
}

TEST(PortsFromLayoutTest, TapsAndWells) {
    auto t = tech::generic180();
    std::vector<layout::Shape> shapes{
        {L::kMetal[0], geom::Rect(0, 0, 30, 2)},
        {L::kSubTap, geom::Rect(1, 0.5, 2, 1.5)},
        {L::kSubTap, geom::Rect(25, 0.5, 26, 1.5)},
        {L::kNWell, geom::Rect(50, 50, 90, 90)},
    };
    std::vector<layout::Label> labels{
        {"vgnd", L::kMetal[0], {15, 1}},
        {"vdd", L::kNWell, {70, 70}},
    };
    auto nets = layout::extract_connectivity(shapes, labels, t);
    auto ports = ports_from_layout(shapes, nets, labels, t);
    // The two taps are far apart: they cluster into separate ports
    // "vgnd!sub0" / "vgnd!sub1" plus one well port.
    ASSERT_EQ(ports.size(), 3u);
    int found_tap = 0;
    bool found_well = false;
    for (const auto& p : ports) {
        if (p.name == tap_port_name("vgnd") + "0" || p.name == tap_port_name("vgnd") + "1") {
            ++found_tap;
            EXPECT_EQ(p.kind, PortKind::Resistive);
            EXPECT_EQ(p.region.rects().size(), 1u);
        }
        if (p.name == well_port_name("vdd")) {
            found_well = true;
            EXPECT_EQ(p.kind, PortKind::Capacitive);
            EXPECT_GT(p.cap_per_area, 0.0);
        }
    }
    EXPECT_EQ(found_tap, 2);
    EXPECT_TRUE(found_well);
}

} // namespace
} // namespace snim::substrate
