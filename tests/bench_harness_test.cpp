// Tests for the snim_bench scenario harness: registration and filtering,
// runtime statistics, the determinism assertion across repetitions,
// BENCH_*.json round-trip through the regression gate (pass / regress /
// improve / new / missing verdicts, schema_version check), and the Chrome
// trace exporter's well-formedness (balanced B/E pairs, monotonic
// timestamps, counter args).
//
// Lives in the snim_obs_tests binary (ctest label "obs").  Like the rest of
// that suite it must compile and pass with -DSNIM_ENABLE_OBS=OFF: harness
// mechanics (timing, accuracy, gating) are mode-independent; expectations on
// registry *content* are guarded.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/bench.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

using namespace snim;

namespace {

obs::Scenario make_scenario(const std::string& name,
                            std::function<void(obs::ScenarioContext&)> body) {
    obs::Scenario s;
    s.name = name;
    s.description = "test scenario";
    s.kind = "kernel";
    s.repeat = 2;
    s.warmup = 0;
    s.run = std::move(body);
    return s;
}

obs::AccuracyMetric metric(const std::string& name, double delta, double tol) {
    obs::AccuracyMetric m;
    m.name = name;
    m.reference = "test";
    m.delta_db = delta;
    m.tolerance_db = tol;
    m.points = 3;
    return m;
}

/// A ScenarioResult with a fixed runtime, bypassing run_scenario.
obs::ScenarioResult fixed_result(const std::string& name, double median_s,
                                 std::vector<obs::AccuracyMetric> accuracy = {}) {
    obs::ScenarioResult r;
    r.name = name;
    r.kind = "kernel";
    r.repetitions = 1;
    r.runtime = obs::runtime_stats({median_s});
    r.accuracy = std::move(accuracy);
    return r;
}

} // namespace

// --- runtime statistics ---------------------------------------------------

TEST(BenchRuntimeStats, OrderStatistics) {
    const auto st = obs::runtime_stats({5.0, 1.0, 3.0, 2.0, 4.0});
    EXPECT_DOUBLE_EQ(st.min_s, 1.0);
    EXPECT_DOUBLE_EQ(st.median_s, 3.0);
    EXPECT_DOUBLE_EQ(st.mean_s, 3.0);
    // Linear interpolation at position 0.95*(n-1) = 3.8.
    EXPECT_DOUBLE_EQ(st.p95_s, 4.8);
    EXPECT_EQ(st.runs_s.size(), 5u);
}

TEST(BenchRuntimeStats, SingleRunAndEmpty) {
    const auto one = obs::runtime_stats({2.5});
    EXPECT_DOUBLE_EQ(one.min_s, 2.5);
    EXPECT_DOUBLE_EQ(one.median_s, 2.5);
    EXPECT_DOUBLE_EQ(one.p95_s, 2.5);

    const auto none = obs::runtime_stats({});
    EXPECT_DOUBLE_EQ(none.median_s, 0.0);
    EXPECT_TRUE(none.runs_s.empty());
}

// --- registration & filtering ---------------------------------------------

TEST(BenchRegistry, RegisterFilterAndDuplicates) {
    obs::register_scenario(make_scenario("t/reg/alpha", [](obs::ScenarioContext&) {}));
    obs::register_scenario(make_scenario("t/reg/beta", [](obs::ScenarioContext&) {}));

    const auto alpha = obs::match_scenarios("t/reg/alpha");
    ASSERT_EQ(alpha.size(), 1u);
    EXPECT_EQ(alpha[0]->name, "t/reg/alpha");

    // Comma-separated substrings union; unknown substrings match nothing.
    EXPECT_EQ(obs::match_scenarios("t/reg/alpha,t/reg/beta").size(), 2u);
    EXPECT_EQ(obs::match_scenarios("t/reg/").size(), 2u);
    EXPECT_TRUE(obs::match_scenarios("no-such-scenario").empty());

    // Empty filter selects everything registered so far.
    EXPECT_GE(obs::match_scenarios("").size(), 2u);

    EXPECT_THROW(
        obs::register_scenario(make_scenario("t/reg/alpha", [](obs::ScenarioContext&) {})),
        Error);
}

// --- run_scenario ---------------------------------------------------------

TEST(BenchRun, CollectsRunsAccuracyAndRegistry) {
    auto s = make_scenario("t/run/basic", [](obs::ScenarioContext& ctx) {
        obs::ScopedTimer t("t_phase/work");
        obs::count("t_phase/work/items", 7);
        ctx.add_accuracy(metric("delta", 0.5, 2.0));
    });
    s.repeat = 3;
    const auto r = obs::run_scenario(s, obs::BenchOptions{});

    EXPECT_EQ(r.repetitions, 3);
    EXPECT_EQ(r.runtime.runs_s.size(), 3u);
    EXPECT_GT(r.runtime.median_s, 0.0);
    ASSERT_EQ(r.accuracy.size(), 1u);
    EXPECT_TRUE(r.accuracy[0].pass());

#if SNIM_OBS_ENABLED
    // The final repetition's registry snapshot rides along; each repetition
    // starts from a reset registry so the counter is 7, not 21.
    EXPECT_EQ(obs::counter_value("t_phase/work/items"), 7u);
    EXPECT_EQ(obs::phase_calls("t_phase/work"), 1u);
    ASSERT_TRUE(r.registry.contains("counters"));
    ASSERT_EQ(r.lane.counters.size(), 1u);
    EXPECT_EQ(r.lane.counters[0].second, 7u);
#endif
    obs::reset();
}

TEST(BenchRun, QuickUsesQuickRepeatAndSkipsWarmup) {
    int runs = 0;
    auto s = make_scenario("t/run/quick", [&](obs::ScenarioContext& ctx) {
        ++runs;
        EXPECT_TRUE(ctx.quick);
    });
    s.repeat = 4;
    s.quick_repeat = 2;
    s.warmup = 3;
    obs::BenchOptions opt;
    opt.quick = true;
    const auto r = obs::run_scenario(s, opt);
    EXPECT_EQ(r.repetitions, 2);
    EXPECT_EQ(runs, 2); // warmups skipped under --quick
    obs::reset();
}

TEST(BenchRun, RepetitionDependentAccuracyRaises) {
    auto s = make_scenario("t/run/nondet", [](obs::ScenarioContext& ctx) {
        // Repetition-dependent delta: exactly the determinism bug the
        // harness exists to catch.
        ctx.add_accuracy(metric("delta", 0.1 * (ctx.repetition + 1), 2.0));
    });
    EXPECT_THROW(obs::run_scenario(s, obs::BenchOptions{}), Error);
    obs::reset();
}

TEST(BenchRun, TwoRunsProduceIdenticalAccuracy) {
    auto s = make_scenario("t/run/det", [](obs::ScenarioContext& ctx) {
        // Derives the metric from the seeded default Rng: identical across
        // runs because run_scenario reseeds before every repetition.
        Rng rng;
        ctx.add_accuracy(metric("delta", rng.uniform(0.0, 1.0), 2.0));
    });
    const auto a = obs::run_scenario(s, obs::BenchOptions{});
    const auto b = obs::run_scenario(s, obs::BenchOptions{});
    ASSERT_EQ(a.accuracy.size(), 1u);
    ASSERT_EQ(b.accuracy.size(), 1u);
    EXPECT_DOUBLE_EQ(a.accuracy[0].delta_db, b.accuracy[0].delta_db);

    obs::BenchOptions other;
    other.seed = 1234;
    const auto c = obs::run_scenario(s, other);
    EXPECT_NE(a.accuracy[0].delta_db, c.accuracy[0].delta_db);
    obs::reset();
}

// --- regression gating ----------------------------------------------------

TEST(BenchGate, BaselineVerdictsRoundTrip) {
    const obs::BenchOptions opt;
    // Baseline: two scenarios at 1.00 s and 2.00 s median.
    const auto baseline = obs::bench_report_json(
        {fixed_result("t/gate/stable", 1.0), fixed_result("t/gate/gone", 2.0)}, opt);

    // This run: stable +5% (pass), a regressed one +50%, an improved one,
    // and a brand-new one; "gone" is absent.
    const auto verdicts = obs::compare_to_baseline(
        baseline,
        {fixed_result("t/gate/stable", 1.05), fixed_result("t/gate/fresh", 0.1)}, 10.0);

    std::map<std::string, obs::VerdictKind> by_name;
    for (const auto& v : verdicts) by_name[v.scenario] = v.kind;
    EXPECT_EQ(by_name.at("t/gate/stable"), obs::VerdictKind::Pass);
    EXPECT_EQ(by_name.at("t/gate/fresh"), obs::VerdictKind::New);
    EXPECT_EQ(by_name.at("t/gate/gone"), obs::VerdictKind::Missing);
    EXPECT_TRUE(obs::gate_passes(verdicts));

    const auto regressed =
        obs::compare_to_baseline(baseline, {fixed_result("t/gate/stable", 1.5)}, 10.0);
    ASSERT_GE(regressed.size(), 1u);
    EXPECT_EQ(regressed[0].kind, obs::VerdictKind::Regress);
    EXPECT_NEAR(regressed[0].change_pct, 50.0, 1e-9);
    EXPECT_FALSE(obs::gate_passes(regressed));

    const auto improved =
        obs::compare_to_baseline(baseline, {fixed_result("t/gate/stable", 0.5)}, 10.0);
    EXPECT_EQ(improved[0].kind, obs::VerdictKind::Improve);
    EXPECT_TRUE(obs::gate_passes(improved));
}

TEST(BenchGate, SerializedBaselineRoundTrip) {
    // Through dump() + parse(): what --baseline actually reads from disk.
    const obs::BenchOptions opt;
    const auto report =
        obs::bench_report_json({fixed_result("t/gate/disk", 1.0)}, opt);
    const auto reparsed = obs::Json::parse(report.dump(2));
    EXPECT_EQ(static_cast<int>(reparsed.at("schema_version").as_number()),
              obs::kBenchSchemaVersion);

    const auto verdicts =
        obs::compare_to_baseline(reparsed, {fixed_result("t/gate/disk", 1.0)}, 10.0);
    ASSERT_EQ(verdicts.size(), 1u);
    EXPECT_EQ(verdicts[0].kind, obs::VerdictKind::Pass);
}

TEST(BenchGate, AccuracyFailureIsAlwaysFatal) {
    const auto bad = fixed_result("t/gate/acc", 1.0, {metric("delta", 5.0, 2.0)});
    const auto verdicts = obs::accuracy_verdicts({bad});
    ASSERT_EQ(verdicts.size(), 1u);
    EXPECT_EQ(verdicts[0].kind, obs::VerdictKind::AccuracyFail);
    EXPECT_FALSE(obs::gate_passes(verdicts));

    // Even a faster-than-baseline run fails when accuracy is out.
    const auto baseline =
        obs::bench_report_json({fixed_result("t/gate/acc", 10.0)}, obs::BenchOptions{});
    const auto vs = obs::compare_to_baseline(baseline, {bad}, 10.0);
    EXPECT_EQ(vs[0].kind, obs::VerdictKind::AccuracyFail);
}

TEST(BenchGate, SchemaVersionMismatchRaises) {
    obs::JsonObject o;
    o.emplace("schema_version", obs::kBenchSchemaVersion + 1);
    o.emplace("scenarios", obs::JsonArray{});
    EXPECT_THROW(obs::compare_to_baseline(obs::Json(std::move(o)), {}, 10.0), Error);
    EXPECT_THROW(obs::compare_to_baseline(obs::Json("not a report"), {}, 10.0), Error);
}

// --- Chrome trace export --------------------------------------------------

namespace {

obs::PhaseNode node(const std::string& path, uint64_t calls, double seconds,
                    std::vector<obs::PhaseNode> children = {}) {
    obs::PhaseNode n;
    const auto slash = path.rfind('/');
    n.name = slash == std::string::npos ? path : path.substr(slash + 1);
    n.path = path;
    n.calls = calls;
    n.seconds = seconds;
    n.children = std::move(children);
    return n;
}

obs::TraceLane sample_lane() {
    obs::TraceLane lane;
    lane.name = "sample";
    lane.tree = node("", 0, 0.0,
                     {node("flow", 0, 0.0,
                           {node("flow/extract", 1, 0.3), node("flow/simulate", 2, 0.7)}),
                      node("numeric", 0, 0.0, {node("numeric/lu_factor", 5, 0.2)})});
    lane.counters = {{"flow/simulate/steps", 1000}, {"unmatched/counter", 3}};
    return lane;
}

} // namespace

TEST(TraceExport, EventsAreBalancedAndMonotonic) {
    const auto doc = obs::chrome_trace_json({sample_lane()});
    ASSERT_TRUE(doc.contains("traceEvents"));
    const auto& events = doc.at("traceEvents").as_array();

    std::map<double, std::vector<std::string>> stacks; // tid -> open B names
    std::map<double, double> last_ts;
    size_t durations = 0;
    for (const auto& e : events) {
        const auto& ph = e.at("ph").as_string();
        if (ph == "M") continue; // metadata carries no timestamp
        ASSERT_TRUE(ph == "B" || ph == "E") << "unexpected phase " << ph;
        ++durations;
        const double tid = e.at("tid").as_number();
        const double ts = e.at("ts").as_number();
        auto it = last_ts.find(tid);
        if (it != last_ts.end()) EXPECT_GE(ts, it->second);
        last_ts[tid] = ts;
        if (ph == "B")
            stacks[tid].push_back(e.at("name").as_string());
        else {
            ASSERT_FALSE(stacks[tid].empty()) << "E without matching B";
            stacks[tid].pop_back();
        }
    }
    EXPECT_GT(durations, 0u);
    for (const auto& [tid, open] : stacks)
        EXPECT_TRUE(open.empty()) << "unbalanced B on tid " << tid;
}

TEST(TraceExport, CountersLandOnDeepestMatchingPhase) {
    const auto doc = obs::chrome_trace_json({sample_lane()});
    bool found_steps = false;
    for (const auto& e : doc.at("traceEvents").as_array()) {
        if (e.at("ph").as_string() != "B") continue;
        if (e.at("name").as_string() != "simulate") continue;
        const auto& args = e.at("args").as_object();
        ASSERT_TRUE(args.count("steps"));
        EXPECT_DOUBLE_EQ(args.at("steps").as_number(), 1000.0);
        found_steps = true;
    }
    EXPECT_TRUE(found_steps);

    // Counters with no phase prefix go to otherData (keyed by lane), not
    // onto a random span.
    ASSERT_TRUE(doc.contains("otherData"));
    const auto& other = doc.at("otherData").at("sample").as_object();
    EXPECT_TRUE(other.count("unmatched/counter"));
}

TEST(TraceExport, LanesGetDistinctTidsAndThreadNames) {
    auto a = sample_lane();
    a.name = "lane_a";
    auto b = sample_lane();
    b.name = "lane_b";
    const auto doc = obs::chrome_trace_json({a, b});

    std::map<std::string, double> lane_tid;
    for (const auto& e : doc.at("traceEvents").as_array()) {
        if (e.at("ph").as_string() != "M") continue;
        if (e.at("name").as_string() != "thread_name") continue;
        lane_tid[e.at("args").at("name").as_string()] = e.at("tid").as_number();
    }
    ASSERT_TRUE(lane_tid.count("lane_a"));
    ASSERT_TRUE(lane_tid.count("lane_b"));
    EXPECT_NE(lane_tid["lane_a"], lane_tid["lane_b"]);
}
