// Run provenance, resource attribution and the cross-run comparison engine:
// config digests (order independence, sensitivity to every option), manifest
// round-trips, the run ledger, snim_report's diff verdicts, per-phase RSS
// attribution and the shared JSON escaping rules.  Own binary: some tests
// assert on the global registry and the process-wide current manifest.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>

#include "core/impact_flow.hpp"
#include "obs/bench.hpp"
#include "obs/compare.hpp"
#include "obs/json.hpp"
#include "obs/provenance.hpp"
#include "obs/registry.hpp"
#include "obs/resources.hpp"
#include "obs/run_ledger.hpp"
#include "obs/trace.hpp"
#include "sim/diagnostics.hpp"
#include "util/strings.hpp"

using namespace snim;

namespace {

class ProvenanceTest : public ::testing::Test {
protected:
    void SetUp() override {
        obs::clear_current_manifest();
#if SNIM_OBS_ENABLED
        obs::reset();
        obs::set_enabled(false);
#endif
    }
    void TearDown() override {
        obs::clear_current_manifest();
#if SNIM_OBS_ENABLED
        obs::reset();
        obs::set_enabled(false);
#endif
    }
};

std::string temp_dir(const std::string& tag) {
    const std::string path =
        std::filesystem::temp_directory_path() /
        ("snim_prov_" + tag + "_" + std::to_string(::getpid()));
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
    return path;
}

// --- config digest --------------------------------------------------------

TEST_F(ProvenanceTest, DigestIsFieldOrderIndependent) {
    obs::ConfigDigest a;
    a.add("x", 1.5);
    a.add("y", true);
    a.add("z", "hello");
    obs::ConfigDigest b;
    b.add("z", "hello");
    b.add("x", 1.5);
    b.add("y", true);
    EXPECT_EQ(a.value64(), b.value64());
    EXPECT_EQ(a.hex(), b.hex());
    EXPECT_EQ(a.hex().size(), 16u);
}

TEST_F(ProvenanceTest, DigestChangesOnValueFieldNameOrExtraField) {
    obs::ConfigDigest base;
    base.add("x", 1.5);
    base.add("y", true);

    obs::ConfigDigest value_changed;
    value_changed.add("x", 1.5000001);
    value_changed.add("y", true);
    EXPECT_NE(base.value64(), value_changed.value64());

    obs::ConfigDigest renamed;
    renamed.add("x2", 1.5);
    renamed.add("y", true);
    EXPECT_NE(base.value64(), renamed.value64());

    obs::ConfigDigest extra = base;
    extra.add("w", 0);
    EXPECT_NE(base.value64(), extra.value64());
}

TEST_F(ProvenanceTest, DigestSeparatesNameValueBoundary) {
    // ("ab", "c") must not collide with ("a", "bc").
    obs::ConfigDigest a, b;
    a.add("ab", "c");
    b.add("a", "bc");
    EXPECT_NE(a.value64(), b.value64());
}

TEST_F(ProvenanceTest, TranOptionsDigestSeesEveryPerturbedField) {
    const auto digest_of = [](const sim::TranOptions& o) {
        obs::ConfigDigest d;
        sim::digest_options(d, o);
        return d.value64();
    };
    sim::TranOptions base;
    const uint64_t h0 = digest_of(base);

    sim::TranOptions o = base;
    o.reltol *= 2.0;
    EXPECT_NE(digest_of(o), h0);
    o = base;
    o.order = 1;
    EXPECT_NE(digest_of(o), h0);
    o = base;
    o.reuse_lu = !o.reuse_lu;
    EXPECT_NE(digest_of(o), h0);
    o = base;
    o.lte_control = !o.lte_control;
    EXPECT_NE(digest_of(o), h0);
    o = base;
    o.max_step_retries += 1;
    EXPECT_NE(digest_of(o), h0);
    o = base;
    o.initial = {0.0, 1.0};
    EXPECT_NE(digest_of(o), h0);
    // And stability: the same options digest identically.
    EXPECT_EQ(digest_of(base), h0);
}

TEST_F(ProvenanceTest, OpAndFlowAndBenchDigestsReactToChanges) {
    const auto op_digest = [](const sim::OpOptions& o) {
        obs::ConfigDigest d;
        sim::digest_options(d, o);
        return d.value64();
    };
    sim::OpOptions op;
    const uint64_t oh = op_digest(op);
    op.source_steps += 1;
    EXPECT_NE(op_digest(op), oh);

    const auto flow_digest = [](const core::FlowOptions& o) {
        obs::ConfigDigest d;
        core::digest_options(d, o);
        return d.value64();
    };
    core::FlowOptions flow;
    const uint64_t fh = flow_digest(flow);
    flow.substrate.mesh.fine_pitch *= 2.0;
    EXPECT_NE(flow_digest(flow), fh);
    flow = core::FlowOptions{};
    flow.interconnect.extract_resistance = false;
    EXPECT_NE(flow_digest(flow), fh);
    flow = core::FlowOptions{};
    flow.substrate.mesh.z_steps.push_back(1.0);
    EXPECT_NE(flow_digest(flow), fh);

    obs::BenchOptions bench;
    const uint64_t bh = obs::bench_config_digest(bench).value64();
    bench.seed += 1;
    EXPECT_NE(obs::bench_config_digest(bench).value64(), bh);
    bench = obs::BenchOptions{};
    bench.quick = true;
    EXPECT_NE(obs::bench_config_digest(bench).value64(), bh);
    // Threads are environment, not configuration.
    bench = obs::BenchOptions{};
    bench.threads = 7;
    EXPECT_EQ(obs::bench_config_digest(bench).value64(), bh);
}

// --- manifests ------------------------------------------------------------

TEST_F(ProvenanceTest, ManifestRoundTripsThroughJson) {
    obs::ConfigDigest d;
    d.add("k", 42);
    const obs::RunManifest m = obs::make_run_manifest("unit_test", d, 1234u, 3);
    EXPECT_FALSE(m.run_id.empty());
    EXPECT_EQ(m.config_digest, d.hex());
    EXPECT_FALSE(m.created_utc.empty());

    const obs::RunManifest r = obs::manifest_from_json(obs::manifest_json(m));
    EXPECT_EQ(r.run_id, m.run_id);
    EXPECT_EQ(r.tool, "unit_test");
    EXPECT_EQ(r.config_digest, m.config_digest);
    EXPECT_EQ(r.seed, 1234u);
    EXPECT_EQ(r.threads, 3);
    EXPECT_EQ(r.build_type, m.build_type);
    EXPECT_EQ(r.compiler, m.compiler);
    EXPECT_EQ(r.obs_enabled, m.obs_enabled);
    EXPECT_EQ(r.faults_enabled, m.faults_enabled);
    EXPECT_EQ(r.hostname, m.hostname);
    EXPECT_EQ(r.os, m.os);
    EXPECT_EQ(r.created_utc, m.created_utc);
}

TEST_F(ProvenanceTest, RunIdsAreUniqueAndEnsureAdoptsTheFirstManifest) {
    obs::ConfigDigest d;
    d.add("k", 1);
    const auto a = obs::make_run_manifest("t", d, 0, 1);
    const auto b = obs::make_run_manifest("t", d, 0, 1);
    EXPECT_NE(a.run_id, b.run_id);

    EXPECT_FALSE(obs::current_manifest().has_value());
    const auto first = obs::ensure_current_manifest("outer", d, 7, 2);
    // A nested entry point must adopt the outer identity, not replace it.
    const auto second = obs::ensure_current_manifest("inner", d, 9, 4);
    EXPECT_EQ(second.run_id, first.run_id);
    EXPECT_EQ(second.tool, "outer");
    ASSERT_TRUE(obs::current_manifest().has_value());
    EXPECT_EQ(obs::current_manifest()->seed, 7u);
}

TEST_F(ProvenanceTest, BenchReportIsSchema2WithManifest) {
    obs::ScenarioResult r;
    r.name = "synthetic";
    r.kind = "kernel";
    r.runtime = obs::runtime_stats({0.25, 0.5, 0.75});
    r.peak_rss_bytes = 123u << 20;
    const obs::Json doc = obs::bench_report_json({r}, obs::BenchOptions{});
    EXPECT_EQ(static_cast<int>(doc.at("schema_version").as_number()),
              obs::kBenchSchemaVersion);
    EXPECT_GE(obs::kBenchSchemaVersion, 2);
    ASSERT_TRUE(doc.contains("manifest"));
    const auto m = obs::manifest_from_json(doc.at("manifest"));
    EXPECT_EQ(m.config_digest,
              obs::bench_config_digest(obs::BenchOptions{}).hex());
    const auto& s = doc.at("scenarios").as_array().at(0);
    EXPECT_DOUBLE_EQ(s.at("peak_rss_bytes").as_number(),
                     static_cast<double>(123u << 20));
}

// --- JSON escaping --------------------------------------------------------

TEST_F(ProvenanceTest, JsonWritersEscapeControlCharsAndNonFiniteDoubles) {
    EXPECT_EQ(obs::json_number(std::nan("")), "null");
    EXPECT_EQ(obs::json_number(INFINITY), "null");
    EXPECT_EQ(obs::json_number(-INFINITY), "null");
    EXPECT_EQ(obs::json_number(3.0), "3");

    obs::JsonObject o;
    o.emplace("ctrl", std::string("a\x01" "b\nc"));
    o.emplace("nan", std::nan(""));
    o.emplace("inf", INFINITY);
    const std::string text = obs::Json(std::move(o)).dump(-1);
    EXPECT_NE(text.find("\\u0001"), std::string::npos);
    // Non-finite doubles must serialise as null, never as a bare token.
    EXPECT_EQ(obs::Json(std::nan("")).dump(-1), "null");
    EXPECT_EQ(obs::Json(INFINITY).dump(-1), "null");

    // Round trip: the parser restores the control character, non-finite
    // values come back as JSON null.
    const obs::Json back = obs::Json::parse(text);
    EXPECT_EQ(back.at("ctrl").as_string(), "a\x01" "b\nc");
    EXPECT_TRUE(back.at("nan").is_null());
}

// --- resource sampling and per-phase RSS ----------------------------------

TEST_F(ProvenanceTest, ResourceSamplingIsMonotoneAndPhaseRssIsAttributed) {
#if SNIM_OBS_ENABLED
    const obs::ResourceSample s0 = obs::sample_resources();
    EXPECT_GT(s0.rss_bytes, 0u);
    EXPECT_GE(s0.peak_rss_bytes, s0.rss_bytes / 2); // HWM can lag slightly

    obs::set_enabled(true);
    {
        obs::ScopedTimer t("prov/alloc", obs::Timing::WhenEnabled,
                           obs::Rss::Track);
        // Touch 32 MB so RSS genuinely grows inside the phase.
        std::vector<char> block(32u << 20);
        for (size_t i = 0; i < block.size(); i += 4096) block[i] = 1;
        const obs::ResourceSample s1 = obs::sample_resources();
        EXPECT_GE(s1.peak_rss_bytes, s0.peak_rss_bytes);
    }
    obs::set_enabled(false);

    bool found = false;
    for (const auto& [name, stats] : obs::phases_snapshot()) {
        if (name != "prov/alloc") continue;
        found = true;
        EXPECT_EQ(stats.rss_samples, 1u);
        EXPECT_GT(stats.rss_peak_bytes, 0u);
    }
    EXPECT_TRUE(found);
#else
    // Gated build: sampling collapses to zeros and tracking to a no-op.
    EXPECT_EQ(obs::sample_resources().rss_bytes, 0u);
    EXPECT_EQ(obs::peak_rss_bytes(), 0u);
    obs::ScopedTimer t("prov/alloc", obs::Timing::WhenEnabled, obs::Rss::Track);
#endif
}

// --- run ledger -----------------------------------------------------------

obs::Json synthetic_report(double median_s, double delta_db, bool with_rss,
                           const std::string& digest) {
    const std::string rss =
        with_rss ? ",\"peak_rss_bytes\": 104857600" : "";
    return obs::Json::parse(format(
        R"({"schema_version": 2, "tool": "snim_bench",
            "manifest": {"run_id": "r1", "tool": "snim_bench",
                         "config_digest": "%s", "seed": 1, "threads": 1,
                         "created_utc": "2026-01-01T00:00:00Z"},
            "scenarios": [
              {"name": "scen_a", "kind": "kernel",
               "runtime": {"median_s": %.17g, "min_s": %.17g},
               "accuracy": [{"name": "m", "reference": "ref.csv",
                             "delta_db": %.17g, "tolerance_db": 2.0,
                             "points": 10, "pass": %s}],
               "registry": {"counters": {"sim/newton_iters": 100,
                                         "bench/other": 5},
                            "phases": [{"name": "sim", "path": "sim",
                                        "calls": 1, "seconds": %.17g}],
                            "timeseries": {"sim/residual": {"offered": 40}}}%s}
            ]})",
        digest.c_str(), median_s, median_s * 0.9, delta_db,
        delta_db <= 2.0 ? "true" : "false", median_s, rss.c_str()));
}

TEST_F(ProvenanceTest, LedgerRoundTripsAndFiltersCounters) {
    const std::string dir = temp_dir("ledger");
    const std::string path = dir + "/ledger.jsonl";

    const obs::Json entry =
        obs::ledger_entry_from_report(synthetic_report(1.0, 0.5, true, "d1"));
    obs::append_ledger(path, entry);
    obs::append_ledger(
        path, obs::ledger_entry_from_report(synthetic_report(2.0, 0.5, true, "d1")));

    const auto entries = obs::read_ledger(path);
    ASSERT_EQ(entries.size(), 2u);
    const auto& s = entries[0].at("scenarios").as_array().at(0);
    EXPECT_EQ(s.at("name").as_string(), "scen_a");
    EXPECT_DOUBLE_EQ(s.at("median_s").as_number(), 1.0);
    EXPECT_TRUE(s.at("accuracy_pass").as_bool());
    // Counter filter: solver-effort counters stay, others are dropped.
    EXPECT_TRUE(s.at("counters").contains("sim/newton_iters"));
    EXPECT_FALSE(s.at("counters").contains("bench/other"));
    EXPECT_TRUE(entries[0].contains("manifest"));

    const std::string trend = obs::trend_text(entries);
    EXPECT_NE(trend.find("scen_a"), std::string::npos);
    EXPECT_NE(trend.find("2 runs"), std::string::npos);
    const std::string html = obs::trend_html(entries);
    EXPECT_NE(html.find("<html>"), std::string::npos);
    EXPECT_NE(html.find("scen_a"), std::string::npos);

    std::filesystem::remove_all(dir);
}

// --- diff verdicts --------------------------------------------------------

TEST_F(ProvenanceTest, IdenticalReportsDiffClean) {
    const obs::Json a = synthetic_report(1.0, 0.5, true, "d1");
    const auto d = obs::diff_reports(a, a);
    EXPECT_TRUE(d.digests_known);
    EXPECT_TRUE(d.digests_match);
    EXPECT_FALSE(obs::diff_has_regression(d));
    for (const auto& m : d.metrics) EXPECT_EQ(m.verdict, obs::DiffVerdict::Equal);
}

TEST_F(ProvenanceTest, DoubledRuntimeRegressesAndRanksFirst) {
    const auto d = obs::diff_reports(synthetic_report(1.0, 0.5, true, "d1"),
                                     synthetic_report(2.0, 0.5, true, "d1"));
    EXPECT_TRUE(obs::diff_has_regression(d));
    ASSERT_FALSE(d.metrics.empty());
    EXPECT_EQ(d.metrics.front().verdict, obs::DiffVerdict::Regress);
    EXPECT_EQ(d.metrics.front().metric, "runtime/median_s");
    EXPECT_NEAR(d.metrics.front().change_pct, 100.0, 1e-9);
    const std::string table = obs::diff_table(d);
    EXPECT_NE(table.find("REGRESS"), std::string::npos);
    EXPECT_NE(table.find("runtime/median_s"), std::string::npos);
}

TEST_F(ProvenanceTest, RuntimeWithinToleranceIsNotARegression) {
    const auto d = obs::diff_reports(synthetic_report(1.0, 0.5, true, "d1"),
                                     synthetic_report(1.1, 0.5, true, "d1"));
    EXPECT_FALSE(obs::diff_has_regression(d)); // +10% < default 25%
}

TEST_F(ProvenanceTest, HalvedRuntimeIsAnImprovement) {
    const auto d = obs::diff_reports(synthetic_report(2.0, 0.5, true, "d1"),
                                     synthetic_report(1.0, 0.5, true, "d1"));
    EXPECT_FALSE(obs::diff_has_regression(d));
    bool improved = false;
    for (const auto& m : d.metrics)
        if (m.metric == "runtime/median_s")
            improved = m.verdict == obs::DiffVerdict::Improve;
    EXPECT_TRUE(improved);
}

TEST_F(ProvenanceTest, AccuracyGateFlipRegressesRegardlessOfTolerance) {
    // 0.5 dB -> 2.5 dB crosses the scenario's 2.0 dB gate: pass -> fail.
    const auto d = obs::diff_reports(synthetic_report(1.0, 0.5, true, "d1"),
                                     synthetic_report(1.0, 2.5, true, "d1"));
    EXPECT_TRUE(obs::diff_has_regression(d));
    bool flagged = false;
    for (const auto& m : d.metrics)
        if (m.metric == "accuracy/m" && m.verdict == obs::DiffVerdict::Regress)
            flagged = true;
    EXPECT_TRUE(flagged);
}

TEST_F(ProvenanceTest, MissingAndNewScenariosAreFlaggedNotRegressed) {
    obs::Json a = synthetic_report(1.0, 0.5, true, "d1");
    obs::Json b = synthetic_report(1.0, 0.5, true, "d1");
    auto& scen_b = b.as_object().at("scenarios").as_array();
    scen_b.at(0).as_object().at("name") = obs::Json(std::string("scen_b"));
    const auto d = obs::diff_reports(a, b);
    ASSERT_EQ(d.only_in_a.size(), 1u);
    ASSERT_EQ(d.only_in_b.size(), 1u);
    EXPECT_EQ(d.only_in_a[0], "scen_a");
    EXPECT_EQ(d.only_in_b[0], "scen_b");
    EXPECT_FALSE(obs::diff_has_regression(d));
}

TEST_F(ProvenanceTest, DifferentDigestsAreReportedNotLikeForLike) {
    const auto d = obs::diff_reports(synthetic_report(1.0, 0.5, true, "d1"),
                                     synthetic_report(1.0, 0.5, true, "d2"));
    EXPECT_TRUE(d.digests_known);
    EXPECT_FALSE(d.digests_match);
    EXPECT_NE(obs::diff_table(d).find("DIFFERENT configuration"),
              std::string::npos);
}

TEST_F(ProvenanceTest, Schema1ReportsStillDiff) {
    obs::Json a = synthetic_report(1.0, 0.5, false, "d1");
    a.as_object().erase("manifest");
    a.as_object().at("schema_version") = obs::Json(1);
    const auto d = obs::diff_reports(a, a);
    EXPECT_FALSE(d.digests_known);
    EXPECT_EQ(d.schema_a, 1);
    EXPECT_FALSE(obs::diff_has_regression(d));
}

TEST_F(ProvenanceTest, SparklineAndShowReport) {
    EXPECT_EQ(obs::sparkline({}), "");
    EXPECT_FALSE(obs::sparkline({1.0, 2.0, 3.0}).empty());
    const std::string shown = obs::show_report(synthetic_report(1.0, 0.5, true, "d1"));
    EXPECT_NE(shown.find("scen_a"), std::string::npos);
    EXPECT_NE(shown.find("d1"), std::string::npos);
}

// --- diag bundle naming ---------------------------------------------------

TEST_F(ProvenanceTest, ConcurrentDiagBundlesGetUniquePaths) {
    const std::string dir = temp_dir("diag");
    constexpr int kWriters = 8;
    std::vector<std::string> paths(kWriters);
    {
        std::vector<std::thread> writers;
        for (int i = 0; i < kWriters; ++i)
            writers.emplace_back([&, i] {
                sim::FailureDiagnosis d;
                d.engine = "transient";
                d.reason = "unit_test";
                paths[static_cast<size_t>(i)] = sim::write_diagnosis_bundle(d, dir);
            });
        for (auto& w : writers) w.join();
    }
    std::set<std::string> unique;
    for (const auto& p : paths) {
        EXPECT_FALSE(p.empty());
        unique.insert(p);
        EXPECT_TRUE(std::filesystem::exists(p)) << p;
    }
    EXPECT_EQ(unique.size(), static_cast<size_t>(kWriters));
    std::filesystem::remove_all(dir);
}

TEST_F(ProvenanceTest, DiagBundleFilenameCarriesRunIdAndManifest) {
    const std::string dir = temp_dir("diag_id");
    obs::ConfigDigest cd;
    cd.add("k", 1);
    obs::set_current_manifest(obs::make_run_manifest("unit", cd, 0, 1));
    const std::string run_id = obs::current_manifest()->run_id;

    sim::FailureDiagnosis d;
    d.engine = "op";
    d.reason = "unit_test";
    const std::string path = sim::write_diagnosis_bundle(d, dir);
    ASSERT_FALSE(path.empty());
    EXPECT_NE(path.find(run_id), std::string::npos) << path;

    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    const obs::Json doc = obs::Json::parse(buf.str());
    ASSERT_TRUE(doc.contains("manifest"));
    EXPECT_EQ(doc.at("manifest").at("run_id").as_string(), run_id);
    std::filesystem::remove_all(dir);
}

} // namespace
