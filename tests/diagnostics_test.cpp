// Failure diagnosis bundles, solver-health time-series channels and the
// VCD waveform export: the debugging surface a failed or suspicious run
// leaves behind.  Runs as its own binary (like the obs suite) because the
// channel tests assert on the global registry.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>

#include "circuit/diode.hpp"
#include "circuit/netlist.hpp"
#include "circuit/passives.hpp"
#include "circuit/sources.hpp"
#include "obs/registry.hpp"
#include "obs/timeseries.hpp"
#include "obs/vcd.hpp"
#include "sim/diagnostics.hpp"
#include "sim/op.hpp"
#include "sim/transient.hpp"
#include "util/error.hpp"

using namespace snim;

namespace {

class DiagnosticsTest : public ::testing::Test {
protected:
    void SetUp() override {
#if SNIM_OBS_ENABLED
        obs::reset();
        obs::set_enabled(false);
#endif
    }
    void TearDown() override {
#if SNIM_OBS_ENABLED
        obs::reset();
        obs::set_enabled(false);
#endif
        sim::set_default_diag_dir("");
    }
};

/// RC lowpass driven by a 100 V pulse: the dv_max clamp (0.5 V) caps Newton
/// progress to max_newton * 0.5 V per step, so the edge can never be
/// swallowed — a deterministic mid-run convergence failure with a clean
/// recorded prefix before it.  The edge sits mid-step (between steps 50 and
/// 51) so the failing step index is float-robust.
circuit::Netlist divergent_netlist() {
    circuit::Netlist nl;
    nl.add<circuit::VSource>(
        "vpulse", nl.node("in"), circuit::kGround,
        circuit::Waveform::pulse(0.0, 100.0, 5.05e-9, 1e-12, 1e-12, 10e-9, 40e-9));
    nl.add<circuit::Resistor>("r1", nl.node("in"), nl.node("out"), 1e3);
    nl.add<circuit::Capacitor>("c1", nl.node("out"), circuit::kGround, 1e-12);
    return nl;
}

sim::TranOptions divergent_options(const std::string& diag_dir) {
    sim::TranOptions opt;
    opt.dt = 0.1e-9;
    opt.tstop = 10e-9;
    opt.diag_dir = diag_dir;
    // These tests exercise the first-failure diagnosis path; the retry
    // ladder would actually rescue this edge by subdividing it into
    // clamp-sized jumps (recovery_test covers that).
    opt.adaptive = false;
    return opt;
}

obs::Json read_json_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return obs::Json::parse(buf.str());
}

/// The bundle path out of the thrown message ("diagnosis bundle: <path>").
std::string bundle_path_from(const std::string& message) {
    const std::string marker = "diagnosis bundle: ";
    const size_t at = message.find(marker);
    if (at == std::string::npos) return {};
    return message.substr(at + marker.size());
}

TEST_F(DiagnosticsTest, DivergentTransientWritesWellFormedBundle) {
    auto nl = divergent_netlist();
    const auto opt = divergent_options(::testing::TempDir());
    std::string message;
    try {
        sim::transient(nl, {"in", "out"}, opt);
        FAIL() << "transient across a 100 V step should not converge";
    } catch (const Error& e) {
        message = e.what();
    }
    // The error names the failing time, the step index and the bundle.
    EXPECT_NE(message.find("did not converge"), std::string::npos) << message;
    EXPECT_NE(message.find("t=5.1"), std::string::npos) << message;
    EXPECT_NE(message.find("step 51 of 100"), std::string::npos) << message;
    EXPECT_NE(message.find("worst node"), std::string::npos) << message;

    const std::string path = bundle_path_from(message);
    ASSERT_FALSE(path.empty()) << message;
    const auto doc = read_json_file(path);
    ASSERT_TRUE(doc.is_object());
    EXPECT_EQ(static_cast<int>(doc.at("schema_version").as_number()),
              sim::kDiagSchemaVersion);
    EXPECT_EQ(doc.at("engine").as_string(), "transient");
    EXPECT_EQ(doc.at("reason").as_string(), "did not converge");
    EXPECT_NEAR(doc.at("fail_time").as_number(), 5.1e-9, 1e-10);
    EXPECT_EQ(static_cast<long>(doc.at("fail_step").as_number()), 51);

    // Options in effect, per-step residual history, worst nodes by name.
    EXPECT_NEAR(doc.at("options").at("dt").as_number(), 0.1e-9, 1e-15);
    const auto& tel = doc.at("telemetry").as_array();
    ASSERT_FALSE(tel.empty());
    EXPECT_FALSE(tel.back().at("converged").as_bool());
    EXPECT_GT(tel.back().at("residual").as_number(), 0.0);
    EXPECT_GT(tel.back().at("newton_iters").as_number(), 1.0);
    EXPECT_GT(tel.back().at("clamp_hits").as_number(), 0.0);
    for (size_t k = 1; k < tel.size(); ++k)
        EXPECT_LT(tel[k - 1].at("step").as_number(), tel[k].at("step").as_number());
    const auto& worst = doc.at("worst_residual_nodes").as_array();
    ASSERT_FALSE(worst.empty());
    EXPECT_EQ(worst.front().at("node").as_string(), "in");
}

TEST_F(DiagnosticsTest, BundleKeepsRecordedPrefixOfNonConvergedTransient) {
    auto nl = divergent_netlist();
    const auto opt = divergent_options(::testing::TempDir());
    std::string message;
    try {
        sim::transient(nl, {"in", "out"}, opt);
    } catch (const Error& e) {
        message = e.what();
    }
    // The 50 accepted steps before the failing 51st were recorded, and the
    // bundle holds their waveform tail instead of discarding the prefix.
    EXPECT_NE(message.find("50 samples recorded"), std::string::npos) << message;
    const auto doc = read_json_file(bundle_path_from(message));
    const auto& waves = doc.at("waves");
    EXPECT_EQ(static_cast<int>(waves.at("recorded_samples").as_number()), 50);
    ASSERT_EQ(waves.at("time").as_array().size(), 50u);
    const auto& in_wave = waves.at("probes").at("in").as_array();
    ASSERT_EQ(in_wave.size(), 50u);
    // The prefix is the quiet pre-pulse interval: all samples near 0 V.
    for (const auto& v : in_wave) EXPECT_NEAR(v.as_number(), 0.0, 1e-6);
    EXPECT_NEAR(waves.at("dt_sample").as_number(), 0.1e-9, 1e-15);
}

TEST_F(DiagnosticsTest, WaveTailTrimsToLastSamples) {
    auto nl = divergent_netlist();
    auto opt = divergent_options(::testing::TempDir());
    opt.diag_wave_tail = 8;
    std::string message;
    try {
        sim::transient(nl, {"in"}, opt);
    } catch (const Error& e) {
        message = e.what();
    }
    const auto doc = read_json_file(bundle_path_from(message));
    const auto& waves = doc.at("waves");
    EXPECT_EQ(static_cast<int>(waves.at("recorded_samples").as_number()), 50);
    EXPECT_EQ(static_cast<int>(waves.at("tail_begin").as_number()), 42);
    EXPECT_EQ(waves.at("time").as_array().size(), 8u);
    EXPECT_EQ(waves.at("probes").at("in").as_array().size(), 8u);
}

TEST_F(DiagnosticsTest, OpFailureWritesBundle) {
    // A nonlinear circuit, so DC Newton clamps updates to dv_max per
    // iteration: the 10 V node target is 20 clamped steps away, max_iter=1
    // cannot reach it.
    circuit::Netlist nl;
    nl.add<circuit::VSource>("v1", nl.node("a"), circuit::kGround,
                             circuit::Waveform::dc(10.0));
    nl.add<circuit::Resistor>("r1", nl.node("a"), nl.node("b"), 1e3);
    nl.add<circuit::Diode>("d1", nl.node("b"), circuit::kGround,
                           circuit::DiodeModel{});
    sim::OpOptions opt;
    opt.max_iter = 1;
    opt.gmin_stepping = false;
    opt.diag_dir = ::testing::TempDir();
    std::string message;
    try {
        sim::operating_point(nl, opt);
        FAIL() << "one Newton iteration cannot reach a clamped 10 V solution";
    } catch (const Error& e) {
        message = e.what();
    }
    const std::string path = bundle_path_from(message);
    ASSERT_FALSE(path.empty()) << message;
    const auto doc = read_json_file(path);
    EXPECT_EQ(doc.at("engine").as_string(), "op");
    EXPECT_FALSE(doc.at("telemetry").as_array().empty());
}

TEST_F(DiagnosticsTest, DisabledBundleStillRaisesStructuredError) {
    auto nl = divergent_netlist();
    auto opt = divergent_options(::testing::TempDir());
    opt.diag_bundle = false;
    try {
        sim::transient(nl, {"in"}, opt);
        FAIL();
    } catch (const Error& e) {
        const std::string message = e.what();
        EXPECT_NE(message.find("step 51 of 100"), std::string::npos) << message;
        EXPECT_EQ(message.find("diagnosis bundle"), std::string::npos) << message;
    }
}

TEST_F(DiagnosticsTest, ValidateTranOptionsNamesTheField) {
    auto expect_raises_naming = [](const sim::TranOptions& opt, const char* field) {
        try {
            sim::validate_tran_options(opt);
            FAIL() << "expected a validation error naming " << field;
        } catch (const Error& e) {
            EXPECT_NE(std::string(e.what()).find(field), std::string::npos)
                << e.what();
        }
    };
    sim::TranOptions ok;
    ok.dt = 1e-9;
    ok.tstop = 1e-6;
    EXPECT_NO_THROW(sim::validate_tran_options(ok));

    auto bad = ok;
    bad.record_stride = 0;
    expect_raises_naming(bad, "record_stride");
    bad = ok;
    bad.record_stride = -3;
    expect_raises_naming(bad, "record_stride");
    bad = ok;
    bad.record_start = ok.tstop;
    expect_raises_naming(bad, "record_start");
    bad = ok;
    bad.max_newton = 0;
    expect_raises_naming(bad, "max_newton");
    bad = ok;
    bad.dt = 0.0;
    expect_raises_naming(bad, "dt");
    bad = ok;
    bad.tstop = -1.0;
    expect_raises_naming(bad, "tstop");
    bad = ok;
    bad.order = 3;
    expect_raises_naming(bad, "order");
    bad = ok;
    bad.dv_max = 0.0;
    expect_raises_naming(bad, "dv_max");
    bad = ok;
    bad.diag_tail = 0;
    expect_raises_naming(bad, "diag_tail");
}

TEST_F(DiagnosticsTest, StepTelemetryRingKeepsLastN) {
    sim::StepTelemetryRing ring(4);
    for (long s = 1; s <= 10; ++s) {
        sim::StepTelemetry t;
        t.step = s;
        ring.push(t);
    }
    const auto tail = ring.tail();
    ASSERT_EQ(tail.size(), 4u);
    EXPECT_EQ(tail.front().step, 7);
    EXPECT_EQ(tail.back().step, 10);
}

TEST_F(DiagnosticsTest, WorstUnknownsRanksByMagnitudeAndNamesNodes) {
    circuit::Netlist nl;
    nl.add<circuit::VSource>("v1", nl.node("a"), circuit::kGround,
                             circuit::Waveform::dc(1.0));
    nl.add<circuit::Resistor>("r1", nl.node("a"), nl.node("b"), 1e3);
    nl.add<circuit::Resistor>("r2", nl.node("b"), circuit::kGround, 1e3);
    nl.finalize();
    // Unknowns: ground + a + b node voltages, then the V-source branch.
    std::vector<double> dv(nl.unknown_count(), 0.0);
    dv[nl.existing_node("a")] = -0.25;
    dv[nl.existing_node("b")] = 2.0;
    dv[nl.node_count()] = std::nan("");
    const auto worst = sim::worst_unknowns(nl, dv, 3);
    ASSERT_EQ(worst.size(), 3u);
    EXPECT_EQ(worst[0].first, "branch:0"); // NaN ranks worst of all
    EXPECT_EQ(worst[1].first, "b");
    EXPECT_EQ(worst[2].first, "a");
}

// --- VCD round trip -------------------------------------------------------

TEST_F(DiagnosticsTest, VcdRoundTripsTransientWaves) {
    circuit::Netlist nl;
    nl.add<circuit::VSource>("vin", nl.node("in"), circuit::kGround,
                             circuit::Waveform::sin(0.0, 1.0, 50e6));
    nl.add<circuit::Resistor>("r1", nl.node("in"), nl.node("out"), 1e3);
    nl.add<circuit::Capacitor>("c1", nl.node("out"), circuit::kGround, 1e-12);
    sim::TranOptions opt;
    opt.dt = 1e-9;
    opt.tstop = 100e-9;
    const auto res = sim::transient(nl, {"in", "out"}, opt);

    std::vector<obs::WaveSignal> waves;
    for (size_t p = 0; p < res.probe_names.size(); ++p) {
        obs::WaveSignal w;
        w.name = res.probe_names[p];
        w.unit = "V";
        w.time = res.time;
        w.value = res.waves[p];
        waves.push_back(std::move(w));
    }
    const std::string path = ::testing::TempDir() + "/tran_roundtrip.vcd";
    obs::write_vcd(path, waves);

    const auto back = obs::read_vcd(path);
    ASSERT_EQ(back.size(), 2u);
    for (size_t p = 0; p < back.size(); ++p) {
        EXPECT_EQ(back[p].name, res.probe_names[p]);
        ASSERT_EQ(back[p].time.size(), res.time.size());
        for (size_t k = 0; k < res.time.size(); ++k) {
            // Values are exact (%.17g); times are quantized to the timescale.
            EXPECT_DOUBLE_EQ(back[p].value[k], res.waves[p][k]);
            EXPECT_NEAR(back[p].time[k], res.time[k], 0.5e-9);
        }
    }
}

TEST_F(DiagnosticsTest, VcdRejectsMalformedSignals) {
    obs::WaveSignal w;
    w.name = "x";
    w.time = {0.0, 1e-9};
    w.value = {1.0}; // size mismatch
    EXPECT_THROW(obs::vcd_document({w}), Error);
    w.value = {1.0, 2.0};
    obs::WaveSignal dup = w;
    EXPECT_THROW(obs::vcd_document({w, dup}), Error);
    w.time = {1e-9, 0.0}; // backwards
    EXPECT_THROW(obs::vcd_document({w}), Error);
    EXPECT_THROW(obs::vcd_document({}), Error);
}

TEST_F(DiagnosticsTest, WaveCsvHoldsLastValueAcrossMergedAxes) {
    obs::WaveSignal a;
    a.name = "a";
    a.time = {0.0, 2e-9};
    a.value = {1.0, 3.0};
    obs::WaveSignal b;
    b.name = "b";
    b.time = {1e-9};
    b.value = {7.0};
    const std::string path = ::testing::TempDir() + "/waves.csv";
    obs::write_wave_csv(path, {a, b});
    std::ifstream in(path);
    std::string header, row0, row1, row2;
    std::getline(in, header);
    std::getline(in, row0);
    std::getline(in, row1);
    std::getline(in, row2);
    EXPECT_EQ(header, "time,a,b");
    EXPECT_NE(row0.find(",1,"), std::string::npos) << row0; // b not yet sampled
    EXPECT_NE(row1.find(",1,7"), std::string::npos) << row1;
    EXPECT_NE(row2.find(",3,7"), std::string::npos) << row2; // b holds
}

// --- time-series channels -------------------------------------------------

#if SNIM_OBS_ENABLED

TEST_F(DiagnosticsTest, DecimationPreservesFirstLastAndMonotoneTime) {
    obs::set_enabled(true);
    const size_t total = 3 * obs::kTimeSeriesCapacity + 17;
    for (size_t k = 0; k < total; ++k)
        obs::ts_append("test/decimate", static_cast<double>(k) * 1e-9,
                       static_cast<double>(k), "V");
    const auto ts = obs::ts_get("test/decimate");
    ASSERT_TRUE(ts.has_value());
    EXPECT_EQ(ts->offered, total);
    EXPECT_GT(ts->stride, 1u);
    EXPECT_LE(ts->time.size(), obs::kTimeSeriesCapacity + 1);
    ASSERT_FALSE(ts->time.empty());
    EXPECT_DOUBLE_EQ(ts->time.front(), 0.0);
    EXPECT_DOUBLE_EQ(ts->value.front(), 0.0);
    EXPECT_DOUBLE_EQ(ts->time.back(), static_cast<double>(total - 1) * 1e-9);
    EXPECT_DOUBLE_EQ(ts->value.back(), static_cast<double>(total - 1));
    for (size_t k = 1; k < ts->time.size(); ++k)
        EXPECT_LT(ts->time[k - 1], ts->time[k]);
}

TEST_F(DiagnosticsTest, TransientFeedsSolverHealthChannels) {
    obs::set_enabled(true);
    circuit::Netlist nl;
    nl.add<circuit::VSource>("vin", nl.node("in"), circuit::kGround,
                             circuit::Waveform::sin(0.0, 0.1, 10e6));
    nl.add<circuit::Resistor>("r1", nl.node("in"), nl.node("out"), 1e3);
    nl.add<circuit::Capacitor>("c1", nl.node("out"), circuit::kGround, 1e-12);
    sim::TranOptions opt;
    opt.dt = 1e-9;
    opt.tstop = 50e-9;
    sim::transient(nl, {"out"}, opt);

    const auto iters = obs::ts_get("sim/transient/newton_iters");
    ASSERT_TRUE(iters.has_value());
    EXPECT_EQ(iters->offered, 50u);
    EXPECT_EQ(iters->unit, "iters");
    for (double v : iters->value) EXPECT_GE(v, 1.0);
    const auto residual = obs::ts_get("sim/transient/residual");
    ASSERT_TRUE(residual.has_value());
    EXPECT_EQ(residual->unit, "V");
    const auto pivot = obs::ts_get("sim/transient/lu_min_pivot");
    ASSERT_TRUE(pivot.has_value());
    for (double v : pivot->value) EXPECT_GT(v, 0.0);
}

TEST_F(DiagnosticsTest, NonFiniteSamplesAreDroppedNotStored) {
    obs::set_enabled(true);
    obs::ts_append("test/nan", 0.0, 1.0);
    obs::ts_append("test/nan", 1.0, std::nan(""));
    obs::ts_append("test/nan", 2.0, HUGE_VAL);
    obs::ts_append("test/nan", 3.0, 2.0);
    const auto ts = obs::ts_get("test/nan");
    ASSERT_TRUE(ts.has_value());
    ASSERT_EQ(ts->value.size(), 2u);
    EXPECT_DOUBLE_EQ(ts->value[0], 1.0);
    EXPECT_DOUBLE_EQ(ts->value[1], 2.0);
    EXPECT_EQ(obs::counter_value("obs/ts_nonfinite_dropped"), 2u);
}

TEST_F(DiagnosticsTest, WaveFromTimeseriesFallsBackToIndexAxis) {
    obs::set_enabled(true);
    obs::ts_append("test/restart", 0.0, 1.0, "V");
    obs::ts_append("test/restart", 1.0, 2.0);
    obs::ts_append("test/restart", 0.5, 3.0); // abscissa restarted
    const auto ts = obs::ts_get("test/restart");
    ASSERT_TRUE(ts.has_value());
    const auto w = obs::wave_from_timeseries(*ts);
    ASSERT_EQ(w.time.size(), 3u);
    EXPECT_DOUBLE_EQ(w.time[0], 0.0);
    EXPECT_DOUBLE_EQ(w.time[1], 1.0);
    EXPECT_DOUBLE_EQ(w.time[2], 2.0);
    EXPECT_NE(w.unit.find("index axis"), std::string::npos);
    // A VCD document built from it is valid (no backwards-time raise).
    EXPECT_NO_THROW(obs::vcd_document({w}));
}

#endif // SNIM_OBS_ENABLED

} // namespace
