// Live-run telemetry suite: the structured event journal (ring overwrite
// and torn-record semantics), heartbeat cadence under a fake clock, the
// hang watchdog driven by a real fault-injected slow transient step, the
// folded-stack sampling profiler, and the crash last-gasp handler (smoke
// tested in a forked child so the death is real but contained).  Runs as
// its own binary: the journal, progress counters, phase stacks and signal
// dispositions are all process-global.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

#include "circuit/netlist.hpp"
#include "circuit/passives.hpp"
#include "circuit/sources.hpp"
#include "obs/events.hpp"
#include "obs/json.hpp"
#include "obs/lastgasp.hpp"
#include "obs/phasestack.hpp"
#include "obs/profiler.hpp"
#include "obs/progress.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "obs/watchdog.hpp"
#include "sim/transient.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"

using namespace snim;

#if SNIM_OBS_ENABLED

namespace {

class LiveObsTest : public ::testing::Test {
protected:
    void SetUp() override {
        fault::clear();
        obs::reset();
        obs::set_enabled(false);
        obs::reset_events_for_test();
        obs::reset_progress_for_test();
        obs::reset_profiler();
        obs::set_events_active(true);
        obs::set_heartbeat_interval(1.0);
    }
    void TearDown() override {
        obs::stop_watchdog();
        obs::stop_profiler();
        obs::phase_stack::set_enabled(false);
        obs::set_heartbeat_clock(nullptr);
        obs::set_heartbeat_observer({});
        obs::close_event_stream();
        obs::set_events_active(false);
        obs::reset_events_for_test();
        obs::reset_progress_for_test();
        fault::clear();
        fault::set_slow_step_seconds(0.25);
    }
};

circuit::Netlist sine_rc_netlist() {
    circuit::Netlist nl;
    nl.add<circuit::VSource>("vin", nl.node("in"), circuit::kGround,
                             circuit::Waveform::sin(0.0, 1.0, 50e6));
    nl.add<circuit::Resistor>("r1", nl.node("in"), nl.node("out"), 1e3);
    nl.add<circuit::Capacitor>("c1", nl.node("out"), circuit::kGround, 1e-12);
    return nl;
}

sim::TranOptions sine_options() {
    sim::TranOptions opt;
    opt.dt = 1e-9;
    opt.tstop = 50e-9;
    opt.diag_dir = ::testing::TempDir();
    return opt;
}

} // namespace

// --- event journal --------------------------------------------------------

TEST_F(LiveObsTest, EventRecordsAreParseableJsonWithStableFields) {
    obs::event(obs::EventLevel::Warn, "test", "unit",
               {{"num", 2.5}, {"str", "hello"}, {"yes", true}, {"count", 7}});
    const auto tail = obs::event_tail();
    ASSERT_EQ(tail.size(), 1u);
    const obs::Json e = obs::Json::parse(tail[0]);
    EXPECT_EQ(e.at("seq").as_number(), 1.0);
    EXPECT_GE(e.at("ts").as_number(), 0.0);
    EXPECT_EQ(e.at("lvl").as_string(), "warn");
    EXPECT_EQ(e.at("comp").as_string(), "test");
    EXPECT_EQ(e.at("code").as_string(), "unit");
    EXPECT_EQ(e.at("kv").at("num").as_number(), 2.5);
    EXPECT_EQ(e.at("kv").at("str").as_string(), "hello");
    EXPECT_TRUE(e.at("kv").at("yes").as_bool());
    EXPECT_EQ(e.at("kv").at("count").as_number(), 7.0);
}

TEST_F(LiveObsTest, RingOverwritesOldestAndKeepsSequenceNumbers) {
    const size_t total = obs::kEventRingSlots + 100;
    for (size_t i = 0; i < total; ++i)
        obs::event(obs::EventLevel::Info, "test", "flood", {{"i", i}});
    EXPECT_EQ(obs::event_count(), total);

    const auto tail = obs::event_tail();
    ASSERT_EQ(tail.size(), obs::kEventRingSlots);
    // Oldest surviving record is exactly total - slots + 1; newest is total.
    const obs::Json first = obs::Json::parse(tail.front());
    const obs::Json last = obs::Json::parse(tail.back());
    EXPECT_EQ(first.at("seq").as_number(),
              static_cast<double>(total - obs::kEventRingSlots + 1));
    EXPECT_EQ(last.at("seq").as_number(), static_cast<double>(total));
    for (const auto& line : tail) EXPECT_NO_THROW(obs::Json::parse(line));
}

TEST_F(LiveObsTest, OversizeKvPayloadDegradesToTruncatedRecord) {
    const std::string big(2 * obs::kEventSlotBytes, 'x');
    obs::event(obs::EventLevel::Info, "test", "big", {{"blob", big}});
    const auto tail = obs::event_tail();
    ASSERT_EQ(tail.size(), 1u);
    const obs::Json e = obs::Json::parse(tail[0]);
    EXPECT_TRUE(e.at("truncated").as_bool());
    EXPECT_EQ(e.at("code").as_string(), "big");
    EXPECT_FALSE(e.contains("kv"));
}

TEST_F(LiveObsTest, InactiveJournalRecordsNothing) {
    obs::set_events_active(false);
    obs::event(obs::EventLevel::Info, "test", "dropped");
    EXPECT_EQ(obs::event_count(), 0u);
    EXPECT_TRUE(obs::event_tail().empty());
}

TEST_F(LiveObsTest, UtilLogWarningsMirrorIntoTheJournal) {
    log_warn("live-obs test warning %d", 42);
    const auto tail = obs::event_tail();
    ASSERT_GE(tail.size(), 1u);
    const obs::Json e = obs::Json::parse(tail.back());
    EXPECT_EQ(e.at("comp").as_string(), "log");
    EXPECT_EQ(e.at("lvl").as_string(), "warn");
    EXPECT_NE(e.at("kv").at("msg").as_string().find("live-obs test warning 42"),
              std::string::npos);
}

TEST_F(LiveObsTest, EventStreamWritesJsonlToFile) {
    const std::string path = ::testing::TempDir() + "/live_obs_stream.jsonl";
    obs::set_event_stream_path(path);
    obs::event(obs::EventLevel::Info, "test", "streamed", {{"k", 1}});
    obs::event(obs::EventLevel::Info, "test", "streamed", {{"k", 2}});
    obs::close_event_stream();

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    size_t lines = 0;
    while (std::getline(in, line)) {
        EXPECT_NO_THROW(obs::Json::parse(line));
        ++lines;
    }
    EXPECT_EQ(lines, 2u);
}

TEST_F(LiveObsTest, RingTailFdWriterEmitsTheSameRecords) {
    obs::event(obs::EventLevel::Info, "test", "fd", {{"k", 1}});
    obs::event(obs::EventLevel::Info, "test", "fd", {{"k", 2}});
    const std::string path = ::testing::TempDir() + "/live_obs_fdtail.jsonl";
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    EXPECT_EQ(obs::detail::write_ring_tail_fd(fileno(f), 10), 2u);
    std::fclose(f);
    std::ifstream in(path);
    std::string line;
    size_t lines = 0;
    while (std::getline(in, line)) {
        EXPECT_NO_THROW(obs::Json::parse(line));
        ++lines;
    }
    EXPECT_EQ(lines, 2u);
}

TEST_F(LiveObsTest, ParseLogLevelAcceptsTheDocumentedSpellings) {
    EXPECT_EQ(parse_log_level("debug"), LogLevel::Debug);
    EXPECT_EQ(parse_log_level("INFO"), LogLevel::Info);
    EXPECT_EQ(parse_log_level("Warn"), LogLevel::Warn);
    EXPECT_EQ(parse_log_level("warning"), LogLevel::Warn);
    EXPECT_EQ(parse_log_level("quiet"), LogLevel::Quiet);
    EXPECT_EQ(parse_log_level("off"), LogLevel::Quiet);
    EXPECT_FALSE(parse_log_level("loud").has_value());
    EXPECT_FALSE(parse_log_level("").has_value());
}

// --- heartbeats -----------------------------------------------------------

namespace {
std::atomic<double> g_fake_now{0.0};
double fake_clock() { return g_fake_now.load(); }
} // namespace

TEST_F(LiveObsTest, HeartbeatsFireOncePerIntervalUnderAFakeClock) {
    obs::set_heartbeat_clock(&fake_clock);
    g_fake_now = 0.0;
    obs::set_heartbeat_interval(1.0);

    obs::ProgressScope scope("test/work", 100);
    // 40 advances over 10 fake seconds: one heartbeat per 1 s window.
    for (int i = 1; i <= 40; ++i) {
        g_fake_now = i * 0.25;
        scope.advance();
    }
    EXPECT_EQ(obs::heartbeat_count(), 10u);

    // Heartbeat records carry monotone percent and the scope's phase.
    double last_pct = -1.0;
    size_t heartbeats = 0;
    for (const auto& line : obs::event_tail()) {
        const obs::Json e = obs::Json::parse(line);
        if (e.at("code").as_string() != "heartbeat") continue;
        ++heartbeats;
        EXPECT_EQ(e.at("kv").at("phase").as_string(), "test/work");
        const double pct = e.at("kv").at("pct").as_number();
        EXPECT_GE(pct, last_pct);
        last_pct = pct;
    }
    EXPECT_EQ(heartbeats, 10u);
}

TEST_F(LiveObsTest, CurrentProgressTracksTheInnermostScope) {
    obs::ProgressScope outer("test/outer", 10);
    outer.advance(2);
    {
        obs::ProgressScope inner("test/inner", 4);
        inner.advance();
        const obs::HeartbeatInfo hb = obs::current_progress();
        EXPECT_EQ(hb.phase, "test/inner");
        EXPECT_EQ(hb.done, 1u);
        EXPECT_EQ(hb.total, 4u);
        EXPECT_EQ(hb.depth, 2);
    }
    const obs::HeartbeatInfo hb = obs::current_progress();
    EXPECT_EQ(hb.phase, "test/outer");
    EXPECT_EQ(hb.done, 2u);
    EXPECT_EQ(hb.depth, 1);
}

TEST_F(LiveObsTest, HeartbeatObserverSeesEtaAndActivatesProgress) {
    obs::set_events_active(false); // observer alone must activate progress
    std::atomic<int> seen{0};
    obs::HeartbeatInfo last;
    std::mutex last_mutex;
    obs::set_heartbeat_observer([&](const obs::HeartbeatInfo& hb) {
        std::lock_guard<std::mutex> lock(last_mutex);
        last = hb;
        ++seen;
    });
    obs::set_heartbeat_clock(&fake_clock);
    g_fake_now = 100.0;
    EXPECT_TRUE(obs::progress_active());

    obs::ProgressScope scope("test/eta", 10);
    g_fake_now = 102.0; // 2 s elapsed
    scope.advance(5);   // half done -> ETA == elapsed
    ASSERT_GE(seen.load(), 1);
    std::lock_guard<std::mutex> lock(last_mutex);
    EXPECT_EQ(last.phase, "test/eta");
    EXPECT_DOUBLE_EQ(last.percent, 50.0);
    EXPECT_NEAR(last.eta_s, last.elapsed_s, 1e-9);
}

// --- watchdog -------------------------------------------------------------

TEST_F(LiveObsTest, SlowStepFaultTripsTheWatchdogStallAndBundle) {
    // One fault-injected slow step sleeps well past both budgets, so the
    // monitor sees a genuinely quiet solver thread mid-transient.
    fault::arm({.point = "tran.slow_step", .at = 20, .count = 1});
    fault::set_slow_step_seconds(0.9);

    obs::WatchdogOptions wd;
    wd.stall_s = 0.2;
    wd.hang_s = 0.6;
    wd.bundle_dir = ::testing::TempDir();
    obs::start_watchdog(wd);

    const uint64_t stalls_before = obs::watchdog_stall_count();
    auto nl = sine_rc_netlist();
    const auto res = sim::transient(nl, {"out"}, sine_options());
    EXPECT_EQ(res.time.size(), 50u);
    // Give the monitor (50 ms tick) a chance to observe the recovery before
    // shutting it down.
    std::this_thread::sleep_for(std::chrono::milliseconds(150));
    obs::stop_watchdog();

    EXPECT_GT(obs::watchdog_stall_count(), stalls_before);
    bool saw_stall = false, saw_recovered = false;
    for (const auto& line : obs::event_tail()) {
        const obs::Json e = obs::Json::parse(line);
        if (e.at("comp").as_string() != "watchdog") continue;
        if (e.at("code").as_string() == "stall") {
            saw_stall = true;
            EXPECT_EQ(e.at("lvl").as_string(), "warn");
            EXPECT_GE(e.at("kv").at("quiet_s").as_number(), 0.2);
            // The live phase stack names the stalled engine.
            EXPECT_NE(e.at("kv").at("stacks").as_string().find("sim/transient"),
                      std::string::npos);
        }
        if (e.at("code").as_string() == "recovered") saw_recovered = true;
    }
    EXPECT_TRUE(saw_stall);
    EXPECT_TRUE(saw_recovered);

    // The hang budget also elapsed inside the sleep: a bundle exists and
    // carries the phase stacks + event tail.
    const std::string bundle = obs::last_watchdog_bundle();
    ASSERT_FALSE(bundle.empty());
    std::ifstream in(bundle);
    ASSERT_TRUE(in.good());
    std::ostringstream buf;
    buf << in.rdbuf();
    const obs::Json doc = obs::Json::parse(buf.str());
    EXPECT_EQ(doc.at("kind").as_string(), "watchdog_hang");
    EXPECT_GE(doc.at("quiet_s").as_number(), 0.6);
    EXPECT_FALSE(doc.at("phase_stacks").as_array().empty());
    EXPECT_FALSE(doc.at("events").as_array().empty());
    std::remove(bundle.c_str());
}

TEST_F(LiveObsTest, WatchdogRejectsNonPositiveStallBudget) {
    obs::WatchdogOptions wd;
    wd.stall_s = 0.0;
    EXPECT_THROW(obs::start_watchdog(wd), Error);
}

TEST_F(LiveObsTest, SlowStepSleepDoesNotChangeTransientResults) {
    auto nl1 = sine_rc_netlist();
    const auto clean = sim::transient(nl1, {"out"}, sine_options());
    fault::arm({.point = "tran.slow_step", .at = 5, .count = 1});
    fault::set_slow_step_seconds(0.05);
    auto nl2 = sine_rc_netlist();
    const auto slowed = sim::transient(nl2, {"out"}, sine_options());
    ASSERT_EQ(clean.waves[0].size(), slowed.waves[0].size());
    for (size_t i = 0; i < clean.waves[0].size(); ++i)
        EXPECT_EQ(clean.waves[0][i], slowed.waves[0][i]);
}

// --- phase stacks & profiler ----------------------------------------------

TEST_F(LiveObsTest, PhaseStackTracksNestingAndSampling) {
    obs::phase_stack::set_enabled(true);
    {
        obs::ScopedTimer outer("test/outer");
        obs::ScopedTimer inner("test/outer/inner");
        EXPECT_EQ(obs::phase_stack::depth(), 2);
        const auto stacks = obs::phase_stack::sample_all();
        ASSERT_EQ(stacks.size(), 1u);
        ASSERT_EQ(stacks[0].frames.size(), 2u);
        EXPECT_EQ(stacks[0].frames[0], "test/outer");
        EXPECT_EQ(stacks[0].frames[1], "test/outer/inner");
    }
    EXPECT_EQ(obs::phase_stack::depth(), 0);
    EXPECT_TRUE(obs::phase_stack::sample_all().empty());
}

TEST_F(LiveObsTest, ProfilerProducesWellFormedFoldedStacks) {
    obs::start_profiler({.hz = 500.0});
    {
        obs::ScopedTimer t("test/profiled");
        std::this_thread::sleep_for(std::chrono::milliseconds(120));
    }
    obs::stop_profiler();

    const obs::FoldedProfile p = obs::profiler_snapshot();
    EXPECT_GT(p.samples, 0u);
    uint64_t sum = 0;
    bool saw_phase = false;
    for (const auto& [stack, count] : p.counts) {
        EXPECT_EQ(stack.rfind("snim", 0), 0u) << stack; // "snim" root frame
        EXPECT_GT(count, 0u);
        sum += count;
        if (stack.find("test/profiled") != std::string::npos) saw_phase = true;
    }
    EXPECT_EQ(sum, p.samples);
    EXPECT_TRUE(saw_phase);

    // folded_text: "stack count" lines, flamegraph.pl's input format.
    const std::string text = obs::folded_text(p);
    std::istringstream lines(text);
    std::string line;
    size_t n = 0;
    while (std::getline(lines, line)) {
        const size_t sp = line.rfind(' ');
        ASSERT_NE(sp, std::string::npos) << line;
        EXPECT_GT(std::stoull(line.substr(sp + 1)), 0u);
        EXPECT_FALSE(line.substr(0, sp).empty());
        ++n;
    }
    EXPECT_EQ(n, p.counts.size());

    const obs::Json j = obs::profile_json(p);
    EXPECT_EQ(j.at("samples").as_number(), static_cast<double>(p.samples));
    EXPECT_EQ(j.at("stacks").as_object().size(), p.counts.size());
}

// --- last gasp ------------------------------------------------------------

TEST_F(LiveObsTest, ForkedChildWritesLastGaspBundleOnAbort) {
    const std::string path = ::testing::TempDir() + "/live_obs_lastgasp.jsonl";
    std::remove(path.c_str());

    const pid_t pid = fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Child: install, leave some journal + stack context, die hard.
        // _exit codes mark setup failures; the expected death is SIGABRT.
        try {
            obs::install_last_gasp(path);
        } catch (...) {
            _exit(97);
        }
        obs::event(obs::EventLevel::Info, "test", "pre_crash", {{"k", 1}});
        obs::ScopedTimer t("test/crashing");
        std::abort();
    }

    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFSIGNALED(status)) << "child exited with " << WEXITSTATUS(status);
    EXPECT_EQ(WTERMSIG(status), SIGABRT);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    bool saw_header = false, saw_stack = false, saw_event = false;
    while (std::getline(in, line)) {
        const obs::Json e = obs::Json::parse(line);
        if (e.contains("last_gasp")) {
            saw_header = true;
            EXPECT_EQ(e.at("last_gasp").at("reason").as_string(), "SIGABRT");
        }
        if (e.contains("phase_stack")) {
            saw_stack = true;
            EXPECT_NE(e.at("phase_stack").at("stack").as_string().find(
                          "test/crashing"),
                      std::string::npos);
        }
        if (e.contains("code") && e.at("code").as_string() == "pre_crash")
            saw_event = true;
    }
    EXPECT_TRUE(saw_header);
    EXPECT_TRUE(saw_stack);
    EXPECT_TRUE(saw_event);
    std::remove(path.c_str());
}

TEST_F(LiveObsTest, LastGaspInstallUninstallRoundTrip) {
    const std::string path = ::testing::TempDir() + "/live_obs_lg_rt.jsonl";
    obs::install_last_gasp(path);
    EXPECT_TRUE(obs::last_gasp_installed());
    EXPECT_EQ(obs::last_gasp_path(), path);
    // The test hook writes the same records the handler would.
    EXPECT_TRUE(obs::detail::write_last_gasp_now("test_reason"));
    obs::uninstall_last_gasp();
    EXPECT_FALSE(obs::last_gasp_installed());
    EXPECT_FALSE(obs::detail::write_last_gasp_now("test_reason"));

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    const obs::Json e = obs::Json::parse(line);
    EXPECT_EQ(e.at("last_gasp").at("reason").as_string(), "test_reason");
    std::remove(path.c_str());
}

#else // SNIM_OBS_ENABLED

// With the obs layer compiled out every live-telemetry API is an inline
// no-op; assert the contract the no-obs CI job relies on.
TEST(LiveObsDisabled, AllApisAreInertNoOps) {
    obs::event(obs::EventLevel::Info, "test", "noop");
    EXPECT_EQ(obs::event_count(), 0u);
    EXPECT_TRUE(obs::event_tail().empty());
    obs::ProgressScope scope("test", 10);
    scope.advance();
    EXPECT_FALSE(obs::progress_active());
    EXPECT_EQ(obs::heartbeat_count(), 0u);
    obs::start_profiler({});
    EXPECT_FALSE(obs::profiler_running());
    obs::start_watchdog({});
    EXPECT_FALSE(obs::watchdog_running());
    EXPECT_FALSE(obs::last_gasp_installed());
}

#endif // SNIM_OBS_ENABLED
