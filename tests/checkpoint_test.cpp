// Checkpoint/restart subsystem: crash-consistent atomic writes, the
// versioned snapshot framing, the double-buffer + fallback loader, the
// corrupt-checkpoint matrix (truncation, checksum flip, wrong version,
// digest mismatch), and the determinism contract — a resumed transient is
// bit-identical to the uninterrupted run.  Own binary: arms ckpt.* fault
// windows, installs the process-default checkpoint policy and asserts on
// global registry counters.
#include <gtest/gtest.h>
#include <sys/stat.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "circuit/diode.hpp"
#include "circuit/netlist.hpp"
#include "circuit/passives.hpp"
#include "circuit/sources.hpp"
#include "obs/provenance.hpp"
#include "obs/registry.hpp"
#include "sim/checkpoint.hpp"
#include "sim/diagnostics.hpp"
#include "sim/transient.hpp"
#include "util/atomic_file.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/thread_pool.hpp"

using namespace snim;

namespace {

class CheckpointTest : public ::testing::Test {
protected:
    void SetUp() override {
        fault::clear();
        sim::set_default_checkpoint({});
#if SNIM_OBS_ENABLED
        obs::reset();
        obs::set_enabled(false);
#endif
    }
    void TearDown() override {
        fault::clear();
        sim::set_default_checkpoint({});
        util::set_default_thread_count(1);
#if SNIM_OBS_ENABLED
        obs::reset();
        obs::set_enabled(false);
#endif
    }

    /// Per-test scratch directory under gtest's temp root, scrubbed of any
    /// snapshot leftovers from a previous run of the same test.
    std::string scratch(const std::string& name) {
        const std::string dir = ::testing::TempDir() + "ckpt_" + name;
        ::mkdir(dir.c_str(), 0755);
        for (const char* tag : {"tran", "tagged_site"}) {
            const std::string p = sim::checkpoint_path(dir, tag);
            std::remove(p.c_str());
            std::remove((p + ".prev").c_str());
        }
        return dir;
    }
};

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

bool file_exists(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return static_cast<bool>(in);
}

/// Mildly nonlinear RC + diode network: exercises per-device integration
/// state (capacitor charge history, diode linearisation point) across the
/// save/restore boundary.
circuit::Netlist test_netlist() {
    circuit::Netlist nl;
    nl.add<circuit::VSource>("vin", nl.node("in"), circuit::kGround,
                             circuit::Waveform::sin(0.4, 0.5, 100e6));
    nl.add<circuit::Resistor>("r1", nl.node("in"), nl.node("mid"), 1e3);
    nl.add<circuit::Capacitor>("c1", nl.node("mid"), circuit::kGround, 2e-12);
    circuit::DiodeModel dm;
    dm.cj0 = 1e-13; // junction capacitance: real integration state to carry
    nl.add<circuit::Diode>("d1", nl.node("mid"), nl.node("out"), dm);
    nl.add<circuit::Resistor>("r2", nl.node("out"), circuit::kGround, 10e3);
    nl.add<circuit::Capacitor>("c2", nl.node("out"), circuit::kGround, 1e-12);
    return nl;
}

sim::TranOptions base_options() {
    sim::TranOptions opt;
    opt.dt = 0.1e-9;
    opt.tstop = 20e-9; // 200 nominal steps
    opt.record_start = 5e-9;
    opt.accumulate_average = true;
    return opt;
}

const std::vector<std::string> kProbes{"mid", "out"};

void expect_bitwise_equal(const sim::TranResult& a, const sim::TranResult& b) {
    ASSERT_EQ(a.time.size(), b.time.size());
    ASSERT_EQ(a.waves.size(), b.waves.size());
    EXPECT_EQ(0, std::memcmp(a.time.data(), b.time.data(),
                             a.time.size() * sizeof(double)));
    for (size_t p = 0; p < a.waves.size(); ++p) {
        ASSERT_EQ(a.waves[p].size(), b.waves[p].size()) << "probe " << p;
        EXPECT_EQ(0, std::memcmp(a.waves[p].data(), b.waves[p].data(),
                                 a.waves[p].size() * sizeof(double)))
            << "probe " << p << " diverged";
    }
    ASSERT_EQ(a.average.size(), b.average.size());
    EXPECT_EQ(0, std::memcmp(a.average.data(), b.average.data(),
                             a.average.size() * sizeof(double)));
}

sim::TranCheckpoint sample_checkpoint() {
    sim::TranCheckpoint c;
    c.config_digest = 0x1234567890abcdefULL;
    c.rng_seed = 42;
    c.step = 17;
    c.attempt_no = 21;
    c.be_steps_done = 4;
    c.level = 1;
    c.consecutive_accepts = 3;
    c.step_retries = 2;
    c.recorded = 5;
    c.averaged = 5;
    c.dt_prev = 0.05e-9;
    c.lte_ok = false;
    c.x_acc = {1.0, -2.5, 3.0e-13};
    c.x_prev = {0.875, -2.5, 2.9e-13};
    c.device_state = {0.1, 0.2, 0.3, 1.0, 0.0};
    c.average = {10.0, -20.0, 30.0};
    c.probe_names = {"mid", "out"};
    c.time = {1e-9, 2e-9};
    c.waves = {{0.5, 0.625}, {0.25, 0.375}};
    c.budget.cert_solves = 9;
    c.budget.worst_omega = 1.5e-12;
    return c;
}

// --- util::atomic_file ------------------------------------------------------

TEST_F(CheckpointTest, AtomicWriteCreatesAndReplaces) {
    const std::string path = ::testing::TempDir() + "atomic_file_test.txt";
    util::write_file_atomic(path, "first");
    EXPECT_EQ(slurp(path), "first");
    util::write_file_atomic(path, "second, longer content");
    EXPECT_EQ(slurp(path), "second, longer content");
    std::remove(path.c_str());
}

TEST_F(CheckpointTest, AtomicWriteMissingDirIsNamedError) {
    try {
        util::write_file_atomic("/nonexistent_dir_snim/x.txt", "data");
        FAIL() << "expected an error";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("/nonexistent_dir_snim"),
                  std::string::npos);
    }
}

TEST_F(CheckpointTest, AtomicAppendAccumulatesRecords) {
    const std::string path = ::testing::TempDir() + "atomic_append_test.jsonl";
    std::remove(path.c_str());
    util::append_record_atomic(path, "{\"a\":1}");
    util::append_record_atomic(path, "{\"b\":2}");
    EXPECT_EQ(slurp(path), "{\"a\":1}\n{\"b\":2}\n");
    std::remove(path.c_str());
}

// --- framing ----------------------------------------------------------------

TEST_F(CheckpointTest, EncodeDecodeRoundTrip) {
    const auto c = sample_checkpoint();
    const auto d = sim::decode_checkpoint(sim::encode_checkpoint(c));
    EXPECT_EQ(d.config_digest, c.config_digest);
    EXPECT_EQ(d.rng_seed, c.rng_seed);
    EXPECT_EQ(d.step, c.step);
    EXPECT_EQ(d.attempt_no, c.attempt_no);
    EXPECT_EQ(d.be_steps_done, c.be_steps_done);
    EXPECT_EQ(d.level, c.level);
    EXPECT_EQ(d.consecutive_accepts, c.consecutive_accepts);
    EXPECT_EQ(d.step_retries, c.step_retries);
    EXPECT_EQ(d.recorded, c.recorded);
    EXPECT_EQ(d.averaged, c.averaged);
    EXPECT_EQ(d.dt_prev, c.dt_prev);
    EXPECT_EQ(d.lte_ok, c.lte_ok);
    EXPECT_EQ(d.x_acc, c.x_acc);
    EXPECT_EQ(d.x_prev, c.x_prev);
    EXPECT_EQ(d.device_state, c.device_state);
    EXPECT_EQ(d.average, c.average);
    EXPECT_EQ(d.probe_names, c.probe_names);
    EXPECT_EQ(d.time, c.time);
    EXPECT_EQ(d.waves, c.waves);
    EXPECT_EQ(d.budget.cert_solves, c.budget.cert_solves);
    EXPECT_EQ(d.budget.worst_omega, c.budget.worst_omega);
}

TEST_F(CheckpointTest, DecodeRejectsBadMagic) {
    std::string frame = sim::encode_checkpoint(sample_checkpoint());
    frame[0] = 'X';
    try {
        sim::decode_checkpoint(frame);
        FAIL() << "expected an error";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
    }
}

TEST_F(CheckpointTest, DecodeRejectsWrongVersion) {
    std::string frame = sim::encode_checkpoint(sample_checkpoint());
    frame[8] = static_cast<char>(99); // version field follows the 8-byte magic
    try {
        sim::decode_checkpoint(frame);
        FAIL() << "expected an error";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
    }
}

TEST_F(CheckpointTest, DecodeRejectsFlippedChecksumByte) {
    std::string frame = sim::encode_checkpoint(sample_checkpoint());
    frame[frame.size() - 3] ^= 0x40;
    try {
        sim::decode_checkpoint(frame);
        FAIL() << "expected an error";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
    }
}

TEST_F(CheckpointTest, DecodeRejectsFlippedPayloadByte) {
    std::string frame = sim::encode_checkpoint(sample_checkpoint());
    frame[frame.size() / 2] ^= 0x01;
    EXPECT_THROW(sim::decode_checkpoint(frame), Error);
}

TEST_F(CheckpointTest, DecodeRejectsTruncation) {
    const std::string frame = sim::encode_checkpoint(sample_checkpoint());
    for (const size_t keep : {size_t{4}, size_t{11}, frame.size() / 2, frame.size() - 1}) {
        EXPECT_THROW(sim::decode_checkpoint(frame.substr(0, keep)), Error)
            << "kept " << keep << " bytes";
    }
}

TEST_F(CheckpointTest, CheckpointPathSlugsTag) {
    EXPECT_EQ(sim::checkpoint_path("/d", "fig8_vt0.9"), "/d/fig8_vt0.9.ckpt");
    EXPECT_EQ(sim::checkpoint_path("/d", "a/b c"), "/d/a_b_c.ckpt");
    EXPECT_EQ(sim::checkpoint_path("/d", ""), "/d/tran.ckpt");
}

// --- double buffer + fallback loader ---------------------------------------

TEST_F(CheckpointTest, WriterRotatesPreviousSnapshot) {
    const std::string dir = scratch("rotate");
    const std::string path = sim::checkpoint_path(dir, "tran");
    auto c = sample_checkpoint();
    sim::write_checkpoint(path, c);
    EXPECT_TRUE(file_exists(path));
    EXPECT_FALSE(file_exists(path + ".prev"));
    c.step = 18;
    sim::write_checkpoint(path, c);
    EXPECT_TRUE(file_exists(path + ".prev"));
    EXPECT_EQ(sim::load_checkpoint(path, c.config_digest)->step, 18);
}

TEST_F(CheckpointTest, LoaderFallsBackWhenNewestIsTruncated) {
    const std::string dir = scratch("fallback_trunc");
    const std::string path = sim::checkpoint_path(dir, "tran");
    auto c = sample_checkpoint();
    sim::write_checkpoint(path, c);
    c.step = 18;
    sim::write_checkpoint(path, c);
    const std::string full = slurp(path);
    util::write_file_atomic(path, full.substr(0, full.size() / 2));
    const auto res = sim::load_checkpoint(path, c.config_digest);
    ASSERT_TRUE(res.has_value());
    EXPECT_EQ(res->step, 17); // the .prev snapshot
}

TEST_F(CheckpointTest, LoaderFallsBackWhenNewestChecksumFlips) {
    const std::string dir = scratch("fallback_sum");
    const std::string path = sim::checkpoint_path(dir, "tran");
    auto c = sample_checkpoint();
    sim::write_checkpoint(path, c);
    c.step = 18;
    sim::write_checkpoint(path, c);
    std::string full = slurp(path);
    full[full.size() / 2] ^= 0x10;
    util::write_file_atomic(path, full);
    const auto res = sim::load_checkpoint(path, c.config_digest);
    ASSERT_TRUE(res.has_value());
    EXPECT_EQ(res->step, 17);
}

TEST_F(CheckpointTest, AllCandidatesCorruptIsNamedError) {
    const std::string dir = scratch("all_corrupt");
    const std::string path = sim::checkpoint_path(dir, "tran");
    util::write_file_atomic(path, "garbage");
    util::write_file_atomic(path + ".prev", "more garbage");
    try {
        sim::load_checkpoint(path, 1);
        FAIL() << "expected an error";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("unreadable"), std::string::npos);
    }
}

TEST_F(CheckpointTest, MissingFilesMeanFreshStart) {
    const std::string dir = scratch("fresh");
    EXPECT_FALSE(sim::load_checkpoint(sim::checkpoint_path(dir, "tran"), 1)
                     .has_value());
}

TEST_F(CheckpointTest, DigestMismatchRefusesEvenWithIntactSnapshot) {
    const std::string dir = scratch("digest");
    const std::string path = sim::checkpoint_path(dir, "tran");
    sim::write_checkpoint(path, sample_checkpoint());
    try {
        sim::load_checkpoint(path, 0xdeadbeefULL);
        FAIL() << "expected an error";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("refusing to resume"),
                  std::string::npos);
    }
}

// --- determinism contract ---------------------------------------------------

TEST_F(CheckpointTest, CheckpointedRunIsBitIdenticalToPlainRun) {
    auto nl_a = test_netlist();
    const auto clean = sim::transient(nl_a, kProbes, base_options());

    const std::string dir = scratch("bitident");
    auto opt = base_options();
    opt.checkpoint.dir = dir;
    opt.checkpoint.every_steps = 25;
    auto nl_b = test_netlist();
    const auto ckpt = sim::transient(nl_b, kProbes, opt);
    expect_bitwise_equal(clean, ckpt);
    EXPECT_TRUE(file_exists(sim::checkpoint_path(dir, "tran")));
}

TEST_F(CheckpointTest, MidRunResumeIsBitIdentical) {
    auto nl_a = test_netlist();
    const auto clean = sim::transient(nl_a, kProbes, base_options());

    for (const int threads : {1, 4}) {
        util::set_default_thread_count(threads);
        const std::string dir = scratch(format("resume_t%d", threads));
        auto opt = base_options();
        opt.checkpoint.dir = dir;
        opt.checkpoint.every_steps = 25;
        auto nl_b = test_netlist();
        (void)sim::transient(nl_b, kProbes, opt);

        // Simulate the SIGKILL: drop the final snapshot so the newest
        // intact one is a mid-run state, then resume on a FRESH netlist.
        const std::string path = sim::checkpoint_path(dir, "tran");
        std::remove(path.c_str());
        ASSERT_EQ(std::rename((path + ".prev").c_str(), path.c_str()), 0);

        auto nl_c = test_netlist();
        const auto resumed = sim::resume_transient(nl_c, kProbes, opt);
        expect_bitwise_equal(clean, resumed);
    }
}

TEST_F(CheckpointTest, ResumeIsBitIdenticalWithStaleJacobianReuseActive) {
    // Tight Newton tolerances keep steps iterating long enough that the
    // modified-Newton stale path actually runs (the endgame predictor
    // otherwise refactors straight away).  A resumed run must still
    // reproduce the uninterrupted waveform exactly: the guard is
    // invalidated at nominal-step boundaries, so the resume point carries
    // no hidden factor state, and the (dt, order) companion cache and the
    // predictor history rebuild deterministically from the snapshot.
    auto tight = base_options();
    tight.vntol = 1e-9;
    tight.reltol = 1e-6;

    auto nl_a = test_netlist();
    const auto clean = sim::transient(nl_a, kProbes, tight);

    const std::string dir = scratch("resume_stale");
    auto opt = tight;
    opt.checkpoint.dir = dir;
    opt.checkpoint.every_steps = 25;
    auto nl_b = test_netlist();
    (void)sim::transient(nl_b, kProbes, opt);

    const std::string path = sim::checkpoint_path(dir, "tran");
    std::remove(path.c_str());
    ASSERT_EQ(std::rename((path + ".prev").c_str(), path.c_str()), 0);

    auto nl_c = test_netlist();
    const auto resumed = sim::resume_transient(nl_c, kProbes, opt);
    expect_bitwise_equal(clean, resumed);
}

TEST_F(CheckpointTest, ResumeFromCompletedRunReplaysInstantly) {
    const std::string dir = scratch("replay");
    auto opt = base_options();
    opt.checkpoint.dir = dir;
    opt.checkpoint.every_steps = 50;
    auto nl_a = test_netlist();
    const auto first = sim::transient(nl_a, kProbes, opt);

    auto nl_b = test_netlist();
    const auto replay = sim::resume_transient(nl_b, kProbes, opt);
    expect_bitwise_equal(first, replay);
}

TEST_F(CheckpointTest, ResumeWithNoSnapshotIsAFreshRun) {
    auto nl_a = test_netlist();
    const auto clean = sim::transient(nl_a, kProbes, base_options());

    const std::string dir = scratch("resume_fresh");
    auto opt = base_options();
    opt.checkpoint.dir = dir;
    opt.checkpoint.every_steps = 50;
    auto nl_b = test_netlist();
    const auto resumed = sim::resume_transient(nl_b, kProbes, opt);
    expect_bitwise_equal(clean, resumed);
}

TEST_F(CheckpointTest, ResumeRefusesChangedOptions) {
    const std::string dir = scratch("changed_opt");
    auto opt = base_options();
    opt.checkpoint.dir = dir;
    opt.checkpoint.every_steps = 50;
    auto nl_a = test_netlist();
    (void)sim::transient(nl_a, kProbes, opt);

    auto changed = opt;
    changed.reltol = 1e-5; // physics knob -> different config digest
    auto nl_b = test_netlist();
    try {
        sim::resume_transient(nl_b, kProbes, changed);
        FAIL() << "expected an error";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("refusing to resume"),
                  std::string::npos);
    }
}

TEST_F(CheckpointTest, CadenceKnobsStayOutOfTheDigest) {
    // Checkpoint knobs are operational: runs that differ only in cadence /
    // dir / resume must share one config digest, or resume would always
    // refuse.
    auto a = base_options();
    auto b = base_options();
    b.checkpoint.dir = "/somewhere";
    b.checkpoint.every_steps = 7;
    b.checkpoint.every_s = 1.5;
    b.checkpoint.resume = true;
    obs::ConfigDigest da, db;
    sim::digest_options(da, a);
    sim::digest_options(db, b);
    EXPECT_EQ(da.value64(), db.value64());
}

TEST_F(CheckpointTest, DefaultPolicyAppliesWhenOptionsCarryNoDir) {
    auto nl_a = test_netlist();
    const auto clean = sim::transient(nl_a, kProbes, base_options());

    const std::string dir = scratch("default_policy");
    sim::CheckpointOptions policy;
    policy.dir = dir;
    policy.every_steps = 50;
    sim::set_default_checkpoint(policy);

    auto opt = base_options();
    opt.checkpoint.tag = "tagged_site";
    auto nl_b = test_netlist();
    const auto run = sim::transient(nl_b, kProbes, opt);
    expect_bitwise_equal(clean, run);
    EXPECT_TRUE(file_exists(sim::checkpoint_path(dir, "tagged_site")));
}

TEST_F(CheckpointTest, ResumeWithoutAnyDirIsNamedError) {
    auto nl = test_netlist();
    try {
        sim::resume_transient(nl, kProbes, base_options());
        FAIL() << "expected an error";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("no checkpoint dir"),
                  std::string::npos);
    }
}

// --- fault points -----------------------------------------------------------

TEST_F(CheckpointTest, WriteFailureKeepsRunAliveOnLastGood) {
    auto nl_a = test_netlist();
    const auto clean = sim::transient(nl_a, kProbes, base_options());

    const std::string dir = scratch("write_fail");
    auto opt = base_options();
    opt.checkpoint.dir = dir;
    opt.checkpoint.every_steps = 25;
    fault::arm({.point = "ckpt.write.fail", .at = 2, .count = 1});
#if SNIM_OBS_ENABLED
    obs::set_enabled(true);
#endif
    auto nl_b = test_netlist();
    const auto run = sim::transient(nl_b, kProbes, opt);
    expect_bitwise_equal(clean, run);
#if SNIM_OBS_ENABLED
    EXPECT_EQ(obs::counter_value("sim/ckpt_write_failures"), 1u);
    EXPECT_GT(obs::counter_value("sim/ckpt_writes"), 0u);
    EXPECT_GT(obs::counter_value("sim/ckpt_bytes"), 0u);
#endif
}

TEST_F(CheckpointTest, CorruptFaultExercisesPrevFallbackOnResume) {
    auto nl_a = test_netlist();
    const auto clean = sim::transient(nl_a, kProbes, base_options());

    const std::string dir = scratch("corrupt_fault");
    auto opt = base_options();
    opt.checkpoint.dir = dir;
    opt.checkpoint.every_steps = 25;
    auto nl_b = test_netlist();
    (void)sim::transient(nl_b, kProbes, opt);

    // The loader's first candidate (the final snapshot) reads as corrupt;
    // resume must fall back to .prev (a mid-run state) and still finish
    // bit-identically.
    fault::arm({.point = "ckpt.corrupt", .at = 1, .count = 1});
#if SNIM_OBS_ENABLED
    obs::set_enabled(true);
#endif
    auto nl_c = test_netlist();
    const auto resumed = sim::resume_transient(nl_c, kProbes, opt);
    expect_bitwise_equal(clean, resumed);
#if SNIM_OBS_ENABLED
    EXPECT_EQ(obs::counter_value("sim/ckpt_fallbacks"), 1u);
    EXPECT_EQ(obs::counter_value("sim/ckpt_resumes"), 1u);
#endif
}

// --- budget-ledger state ----------------------------------------------------

#if SNIM_OBS_ENABLED
TEST_F(CheckpointTest, BudgetRestoreMergesMonotonically) {
    obs::set_enabled(true);
    obs::BudgetState st;
    obs::BudgetState::Row row;
    row.stage = "sim/kcl";
    row.unit = "A";
    row.worst = 1e-7;
    row.threshold = 1e-6;
    row.higher_is_worse = true;
    row.samples = 10;
    row.breaches = 0;
    row.detail = "node mid";
    st.rows.push_back(row);
    st.cert_solves = 5;
    st.worst_omega = 2e-13;
    st.min_rcond = 1e-3;

    obs::budget_restore(st);
    auto out = obs::budget_state();
    ASSERT_EQ(out.rows.size(), 1u);
    EXPECT_EQ(out.rows[0].stage, "sim/kcl");
    EXPECT_EQ(out.rows[0].worst, 1e-7);
    EXPECT_EQ(out.rows[0].samples, 10u);
    EXPECT_EQ(out.cert_solves, 5u);
    EXPECT_EQ(out.min_rcond, 1e-3);

    // Restoring an EARLIER snapshot of the same path must not regress the
    // ledger: counters keep their maxima, worst keeps the worse value.
    obs::BudgetState earlier = st;
    earlier.rows[0].samples = 4;
    earlier.rows[0].worst = 5e-8;
    earlier.cert_solves = 2;
    earlier.min_rcond = 5e-3;
    obs::budget_restore(earlier);
    out = obs::budget_state();
    EXPECT_EQ(out.rows[0].samples, 10u);
    EXPECT_EQ(out.rows[0].worst, 1e-7);
    EXPECT_EQ(out.cert_solves, 5u);
    EXPECT_EQ(out.min_rcond, 1e-3);
}
#endif

} // namespace
