#include <gtest/gtest.h>

#include <cmath>

#include "circuit/controlled.hpp"
#include "circuit/diode.hpp"
#include "circuit/mosfet.hpp"
#include "circuit/netlist.hpp"
#include "circuit/passives.hpp"
#include "circuit/sources.hpp"
#include "circuit/spice_parser.hpp"
#include "circuit/spice_writer.hpp"
#include "circuit/varactor.hpp"
#include "tech/generic180.hpp"
#include "util/error.hpp"

namespace snim::circuit {
namespace {

TEST(NetlistTest, GroundAliases) {
    Netlist nl;
    EXPECT_EQ(nl.node("0"), kGround);
    EXPECT_EQ(nl.node("gnd"), kGround);
    EXPECT_EQ(nl.node("GND"), kGround);
    EXPECT_EQ(nl.node_count(), 0u);
}

TEST(NetlistTest, NodeCreationAndLookup) {
    Netlist nl;
    const NodeId a = nl.node("a");
    const NodeId b = nl.node("b");
    EXPECT_NE(a, b);
    EXPECT_EQ(nl.node("a"), a);
    EXPECT_EQ(nl.existing_node("b"), b);
    EXPECT_THROW(nl.existing_node("zz"), Error);
    EXPECT_EQ(nl.node_name(a), "a");
    EXPECT_EQ(nl.node_name(kGround), "0");
}

TEST(NetlistTest, DeviceManagement) {
    Netlist nl;
    auto& r = nl.add<Resistor>("load", nl.node("a"), nl.node("0"), 50.0);
    EXPECT_EQ(nl.find("load"), &r);
    EXPECT_EQ(nl.find_as<Resistor>("load"), &r);
    EXPECT_EQ(nl.find_as<Capacitor>("cload"), nullptr);
    EXPECT_THROW(nl.add<Resistor>("load", nl.node("a"), nl.node("0"), 1.0), Error);
}

TEST(NetlistTest, FinalizeAssignsAuxIndices) {
    Netlist nl;
    nl.add<VSource>("v1", nl.node("a"), kGround, Waveform::dc(1.0));
    nl.add<Inductor>("l1", nl.node("a"), nl.node("b"), 1e-9);
    nl.finalize();
    EXPECT_EQ(nl.unknown_count(), 4u); // 2 nodes + 2 branch currents
    auto* v = nl.find("v1");
    auto* l = nl.find("l1");
    EXPECT_GE(v->aux_base(), 2);
    EXPECT_GE(l->aux_base(), 2);
    EXPECT_NE(v->aux_base(), l->aux_base());
}

TEST(NetlistTest, AbsorbMergesSharedNodes) {
    Netlist main;
    main.add<Resistor>("r1", main.node("out"), kGround, 100.0);

    Netlist sub;
    sub.add<Resistor>("rsub", sub.node("port"), sub.node("internal"), 10.0);
    sub.add<Resistor>("rsub2", sub.node("internal"), kGround, 20.0);

    main.absorb(std::move(sub), "sub:", {"port"});
    // "port" NOT in main -> created as shared name; internal got prefixed.
    EXPECT_TRUE(main.has_node("port"));
    EXPECT_TRUE(main.has_node("sub:internal"));
    EXPECT_FALSE(main.has_node("internal"));
    EXPECT_EQ(main.device_count(), 3u);
}

TEST(WaveformTest, DcAndSin) {
    auto w = Waveform::dc(2.5);
    EXPECT_DOUBLE_EQ(w.value(0.0), 2.5);
    EXPECT_DOUBLE_EQ(w.value(1e9), 2.5);

    auto s = Waveform::sin(1.0, 0.5, 1e6);
    EXPECT_NEAR(s.value(0.0), 1.0, 1e-12);
    EXPECT_NEAR(s.value(0.25e-6), 1.5, 1e-9); // quarter period
    EXPECT_NEAR(s.dc_value(), 1.0, 1e-12);
}

TEST(WaveformTest, Pulse) {
    auto p = Waveform::pulse(0.0, 1.8, 1e-9, 0.1e-9, 0.1e-9, 2e-9, 10e-9);
    EXPECT_DOUBLE_EQ(p.value(0.0), 0.0);
    EXPECT_NEAR(p.value(1.05e-9), 0.9, 1e-9);  // mid-rise
    EXPECT_DOUBLE_EQ(p.value(2e-9), 1.8);      // plateau
    EXPECT_DOUBLE_EQ(p.value(5e-9), 0.0);      // back low
    EXPECT_DOUBLE_EQ(p.value(12e-9), 1.8);     // next period plateau
}

TEST(WaveformTest, Pwl) {
    auto w = Waveform::pwl({{0.0, 0.0}, {1.0, 2.0}, {3.0, -2.0}});
    EXPECT_DOUBLE_EQ(w.value(-1.0), 0.0);
    EXPECT_DOUBLE_EQ(w.value(0.5), 1.0);
    EXPECT_DOUBLE_EQ(w.value(2.0), 0.0);
    EXPECT_DOUBLE_EQ(w.value(9.0), -2.0);
    EXPECT_THROW(Waveform::pwl({{1.0, 0.0}, {0.5, 1.0}}), Error);
}

TEST(PassivesTest, RejectsBadValues) {
    Netlist nl;
    EXPECT_THROW(nl.add<Resistor>("r", nl.node("a"), kGround, 0.0), Error);
    EXPECT_THROW(nl.add<Capacitor>("c", nl.node("a"), kGround, -1e-12), Error);
    EXPECT_THROW(nl.add<Inductor>("l", nl.node("a"), kGround, 0.0), Error);
}

TEST(VaractorTest, CapacitanceLimits) {
    tech::VaractorCard card;
    Netlist nl;
    auto& v = nl.add<Varactor>("var", nl.node("g"), nl.node("w"), card, 100.0);
    EXPECT_NEAR(v.capacitance(-3.0), v.cmin(), 0.01 * v.cmin());
    EXPECT_NEAR(v.capacitance(3.0), v.cmax(), 0.01 * v.cmax());
    EXPECT_GT(v.capacitance(0.5), v.capacitance(-0.5));
}

TEST(VaractorTest, ChargeIsIntegralOfCapacitance) {
    tech::VaractorCard card;
    Netlist nl;
    auto& v = nl.add<Varactor>("var", nl.node("g"), nl.node("w"), card, 50.0);
    // dQ/dV == C(V) by central difference at several biases.
    for (double bias : {-1.0, -0.2, 0.05, 0.3, 1.2}) {
        const double h = 1e-5;
        const double dq = (v.charge(bias + h) - v.charge(bias - h)) / (2 * h);
        EXPECT_NEAR(dq, v.capacitance(bias), 1e-6 * v.cmax());
    }
}

TEST(MosfetTest, SaturationSmallSignal) {
    auto t = tech::generic180();
    Netlist nl;
    auto& m = nl.add<Mosfet>("m1", nl.node("d"), nl.node("g"), kGround, kGround,
                             t.mos_model("nch"), MosGeometry{.w = 10, .l = 0.18});
    nl.finalize();
    std::vector<double> x(nl.unknown_count(), 0.0);
    x[static_cast<size_t>(nl.existing_node("d"))] = 1.5;
    x[static_cast<size_t>(nl.existing_node("g"))] = 1.0;
    const auto ss = m.small_signal(x);
    EXPECT_TRUE(ss.on);
    EXPECT_TRUE(ss.saturated);
    EXPECT_GT(ss.ids, 0.0);
    EXPECT_GT(ss.gm, 0.0);
    EXPECT_GT(ss.gds, 0.0);
    EXPECT_GT(ss.gmb, 0.0);
    EXPECT_LT(ss.gmb, ss.gm); // gmb is a fraction of gm
    // Saturation: ids ~ 0.5 kp W/L vov^2 (1 + lambda vds).
    const auto& card = t.mos_model("nch");
    const double vov = 1.0 - ss.vt;
    const double ids_expect =
        0.5 * card.kp * (10.0 / 0.18) * vov * vov * (1.0 + card.lambda * 1.5);
    EXPECT_NEAR(ss.ids, ids_expect, 1e-12);
}

TEST(MosfetTest, CutoffHasNoCurrent) {
    auto t = tech::generic180();
    Netlist nl;
    auto& m = nl.add<Mosfet>("m1", nl.node("d"), nl.node("g"), kGround, kGround,
                             t.mos_model("nch"), MosGeometry{});
    nl.finalize();
    std::vector<double> x(nl.unknown_count(), 0.0);
    x[static_cast<size_t>(nl.existing_node("d"))] = 1.0;
    const auto ss = m.small_signal(x);
    EXPECT_FALSE(ss.on);
    EXPECT_DOUBLE_EQ(ss.ids, 0.0);
    EXPECT_DOUBLE_EQ(ss.gm, 0.0);
}

TEST(MosfetTest, TriodeConductance) {
    auto t = tech::generic180();
    Netlist nl;
    auto& m = nl.add<Mosfet>("m1", nl.node("d"), nl.node("g"), kGround, kGround,
                             t.mos_model("nch"), MosGeometry{.w = 10, .l = 0.18});
    nl.finalize();
    std::vector<double> x(nl.unknown_count(), 0.0);
    x[static_cast<size_t>(nl.existing_node("d"))] = 0.05;
    x[static_cast<size_t>(nl.existing_node("g"))] = 1.8;
    const auto ss = m.small_signal(x);
    EXPECT_TRUE(ss.on);
    EXPECT_FALSE(ss.saturated);
    // Deep triode: gds ~ kp W/L (vov - vds), much larger than gm.
    EXPECT_GT(ss.gds, ss.gm);
}

TEST(MosfetTest, BodyBiasRaisesThreshold) {
    auto t = tech::generic180();
    Netlist nl;
    auto& m = nl.add<Mosfet>("m1", nl.node("d"), nl.node("g"), kGround, nl.node("b"),
                             t.mos_model("nch"), MosGeometry{});
    nl.finalize();
    std::vector<double> x(nl.unknown_count(), 0.0);
    x[static_cast<size_t>(nl.existing_node("d"))] = 1.5;
    x[static_cast<size_t>(nl.existing_node("g"))] = 1.0;
    const double vt0 = m.small_signal(x).vt;
    x[static_cast<size_t>(nl.existing_node("b"))] = -1.0; // reverse body bias
    const double vt1 = m.small_signal(x).vt;
    EXPECT_GT(vt1, vt0);
}

TEST(MosfetTest, SourceDrainSwapSymmetry) {
    // Swapping drain/source voltages must mirror the current.
    auto t = tech::generic180();
    Netlist nl;
    auto& m = nl.add<Mosfet>("m1", nl.node("d"), nl.node("g"), nl.node("s"), kGround,
                             t.mos_model("nch"), MosGeometry{});
    nl.finalize();
    std::vector<double> x(nl.unknown_count(), 0.0);
    const auto nd = static_cast<size_t>(nl.existing_node("d"));
    const auto ng = static_cast<size_t>(nl.existing_node("g"));
    const auto ns = static_cast<size_t>(nl.existing_node("s"));
    x[nd] = 1.0;
    x[ng] = 1.2;
    x[ns] = 0.2;
    const double i_fwd = m.small_signal(x).ids;
    std::swap(x[nd], x[ns]);
    const double i_rev = m.small_signal(x).ids;
    EXPECT_NEAR(i_fwd, -i_rev, 1e-15);
}

TEST(MosfetTest, PmosPolarity) {
    auto t = tech::generic180();
    Netlist nl;
    auto& m = nl.add<Mosfet>("mp", nl.node("d"), nl.node("g"), nl.node("s"), nl.node("s"),
                             t.mos_model("pch"), MosGeometry{.w = 20, .l = 0.18});
    nl.finalize();
    std::vector<double> x(nl.unknown_count(), 0.0);
    // Source at 1.8, gate at 0.9, drain at 0.5: PMOS on, current out of drain.
    x[static_cast<size_t>(nl.existing_node("s"))] = 1.8;
    x[static_cast<size_t>(nl.existing_node("g"))] = 0.9;
    x[static_cast<size_t>(nl.existing_node("d"))] = 0.5;
    const auto ss = m.small_signal(x);
    EXPECT_TRUE(ss.on);
    EXPECT_LT(ss.ids, 0.0); // conventional current INTO drain is negative
    EXPECT_GT(ss.gm, 0.0);
}

TEST(MosfetTest, JunctionCapsShrinkUnderReverseBias) {
    auto t = tech::generic180();
    Netlist nl;
    auto& m = nl.add<Mosfet>("m1", nl.node("d"), nl.node("g"), kGround, nl.node("b"),
                             t.mos_model("nch"), MosGeometry{.w = 50, .l = 0.34});
    nl.finalize();
    std::vector<double> x(nl.unknown_count(), 0.0);
    x[static_cast<size_t>(nl.existing_node("d"))] = 0.0;
    const double cdb0 = m.small_signal(x).cdb;
    x[static_cast<size_t>(nl.existing_node("d"))] = 1.8; // reverse biases D-B
    const double cdb1 = m.small_signal(x).cdb;
    EXPECT_LT(cdb1, cdb0);
    EXPECT_NEAR(cdb0, m.cdb_zero_bias(), 1e-18);
}

TEST(SpiceParserTest, BasicRlcAndSources) {
    const std::string text = R"(test circuit
V1 in 0 dc 1.8 ac 1
R1 in out 1k
C1 out 0 2.2p
L1 out tail 3n rser=2.5
I1 0 tail sin(0 1m 10meg)
.end
)";
    auto res = parse_spice(text);
    EXPECT_EQ(res.title, "test circuit");
    EXPECT_EQ(res.netlist.device_count(), 5u);
    auto* r = res.netlist.find_as<Resistor>("r1");
    ASSERT_NE(r, nullptr);
    EXPECT_DOUBLE_EQ(r->resistance(), 1000.0);
    auto* l = res.netlist.find_as<Inductor>("l1");
    ASSERT_NE(l, nullptr);
    EXPECT_DOUBLE_EQ(l->inductance(), 3e-9);
    EXPECT_DOUBLE_EQ(l->series_res(), 2.5);
}

TEST(SpiceParserTest, MosfetWithModelCard) {
    const std::string text = R"(mos test
.model mynch nmos(vto=0.5 kp=100u gamma=0.4)
M1 d g 0 0 mynch w=20u l=0.18u m=2
V1 d 0 1.5
V2 g 0 1.0
)";
    auto res = parse_spice(text);
    auto* m = res.netlist.find_as<Mosfet>("m1");
    ASSERT_NE(m, nullptr);
    EXPECT_DOUBLE_EQ(m->model().vt0, 0.5);
    EXPECT_DOUBLE_EQ(m->model().kp, 100e-6);
    EXPECT_NEAR(m->geometry().w, 20.0, 1e-9);
    EXPECT_EQ(m->geometry().m, 2);
}

TEST(SpiceParserTest, TechFallbackModels) {
    auto t = tech::generic180();
    const std::string text = "fallback\nM1 d g 0 0 nch w=10u l=0.18u\nV1 d 0 1.2\n";
    auto res = parse_spice(text, &t);
    EXPECT_NE(res.netlist.find_as<Mosfet>("m1"), nullptr);
}

TEST(SpiceParserTest, ContinuationAndComments) {
    const std::string text = "title\n* a comment\nR1 a b\n+ 2k\n* trailing\n";
    auto res = parse_spice(text);
    auto* r = res.netlist.find_as<Resistor>("r1");
    ASSERT_NE(r, nullptr);
    EXPECT_DOUBLE_EQ(r->resistance(), 2000.0);
}

TEST(SpiceParserTest, ErrorsCarryLineNumbers) {
    try {
        parse_spice("t\nR1 a b\n");
        FAIL() << "expected parse error";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("line"), std::string::npos);
    }
    EXPECT_THROW(parse_spice("t\nZx a b 1\n"), Error);
    EXPECT_THROW(parse_spice("t\nM1 d g 0 0 nosuchmodel\n"), Error);
}

TEST(SpiceWriterTest, RoundTrip) {
    const std::string text = R"(roundtrip
V1 in 0 dc 1.8
R1 in out 1k
Cload out 0 2.2p
Gbuf out 0 in 0 10m
)";
    auto first = parse_spice(text);
    const std::string dumped = write_spice(first.netlist, first.title);
    auto second = parse_spice(dumped);
    EXPECT_EQ(second.netlist.device_count(), first.netlist.device_count());
    auto* r = second.netlist.find_as<Resistor>("r1");
    ASSERT_NE(r, nullptr);
    EXPECT_NEAR(r->resistance(), 1000.0, 1e-6);
    auto* c = second.netlist.find_as<Capacitor>("cload");
    ASSERT_NE(c, nullptr);
    EXPECT_NEAR(c->capacitance(), 2.2e-12, 1e-18);
}

TEST(SpiceParserTest, SubcktExpansion) {
    const std::string text = R"(subckt test
.subckt divider in out
R1 in out 1k
R2 out 0 1k
.ends
Vsrc top 0 dc 2
Xa top mid divider
Xb mid 0 divider
)";
    auto res = parse_spice(text);
    // Each instance expands to two resistors with hierarchical names.
    EXPECT_EQ(res.netlist.device_count(), 5u);
    EXPECT_NE(res.netlist.find("rxa.1"), nullptr);
    EXPECT_NE(res.netlist.find("rxb.2"), nullptr);
    // Internal nodes are prefixed, shared ports merge.
    EXPECT_TRUE(res.netlist.has_node("mid"));
    EXPECT_TRUE(res.netlist.has_node("top"));
}

TEST(SpiceParserTest, NestedSubcktInstances) {
    const std::string text = R"(nested
.subckt unit a b
R1 a b 100
.ends
.subckt pair x y
Xu1 x m unit
Xu2 m y unit
.ends
Vs in 0 dc 1
Xp in 0 pair
)";
    auto res = parse_spice(text);
    EXPECT_EQ(res.netlist.device_count(), 3u); // V + 2 expanded resistors
    EXPECT_TRUE(res.netlist.has_node("xxp.m") || res.netlist.has_node("xp.m"));
}

TEST(SpiceParserTest, SubcktErrors) {
    EXPECT_THROW(parse_spice("t\nXa n1 nosuch\n"), Error);
    EXPECT_THROW(parse_spice("t\n.subckt s a\nR1 a 0 1\n"), Error); // unterminated
    EXPECT_THROW(parse_spice("t\n.subckt s a b\nR1 a b 1\n.ends\nXa n1 s\n"),
                 Error); // port count mismatch
}

TEST(DiodeTest, ExponentialAndLimiting) {
    DiodeModel dm;
    Netlist nl;
    auto& d = nl.add<Diode>("d1", nl.node("a"), kGround, dm);
    EXPECT_NEAR(d.current(0.0), 0.0, 1e-18);
    EXPECT_GT(d.current(0.7), 1e-6);
    EXPECT_LT(d.current(-1.0), 0.0);
    // Far forward bias must not overflow.
    EXPECT_TRUE(std::isfinite(d.current(5.0)));
    EXPECT_TRUE(std::isfinite(d.conductance(5.0)));
}

} // namespace
} // namespace snim::circuit
