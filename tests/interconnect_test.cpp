#include <gtest/gtest.h>

#include <cmath>

#include "circuit/passives.hpp"
#include "circuit/sources.hpp"
#include "geom/polygon.hpp"
#include "interconnect/extractor.hpp"
#include "interconnect/fracture.hpp"
#include "layout/connectivity.hpp"
#include "sim/op.hpp"
#include "tech/generic180.hpp"
#include "util/error.hpp"

namespace snim::interconnect {
namespace {

namespace L = snim::tech::layers;

TEST(FractureTest, SingleAttachSingleNode) {
    auto f = fracture_shape(geom::Rect(0, 0, 10, 1), {{{5, 0.5}, 0}});
    EXPECT_EQ(f.positions.size(), 1u);
    EXPECT_TRUE(f.segments.empty());
    EXPECT_EQ(f.attach_node[0], 0);
}

TEST(FractureTest, TwoAttachesOneSegment) {
    auto f = fracture_shape(geom::Rect(0, 0, 10, 1), {{{1, 0.5}, 0}, {{9, 0.5}, 1}});
    ASSERT_EQ(f.positions.size(), 2u);
    ASSERT_EQ(f.segments.size(), 1u);
    EXPECT_NEAR(f.segments[0].length, 8.0, 1e-12);
    EXPECT_NEAR(f.segments[0].width, 1.0, 1e-12);
    EXPECT_TRUE(f.horizontal);
}

TEST(FractureTest, VerticalShape) {
    auto f = fracture_shape(geom::Rect(0, 0, 1, 20), {{{0.5, 2}, 0}, {{0.5, 18}, 1}});
    EXPECT_FALSE(f.horizontal);
    ASSERT_EQ(f.segments.size(), 1u);
    EXPECT_NEAR(f.segments[0].length, 16.0, 1e-12);
}

TEST(FractureTest, NearbyAttachesMerge) {
    auto f = fracture_shape(geom::Rect(0, 0, 10, 1),
                            {{{2, 0.5}, 0}, {{2.01, 0.5}, 1}, {{8, 0.5}, 2}});
    EXPECT_EQ(f.positions.size(), 2u);
    EXPECT_EQ(f.attach_node[0], f.attach_node[1]);
}

TEST(FractureTest, AttachOutsideClamped) {
    auto f = fracture_shape(geom::Rect(0, 0, 10, 1), {{{-5, 0.5}, 0}, {{15, 0.5}, 1}});
    ASSERT_EQ(f.segments.size(), 1u);
    EXPECT_NEAR(f.segments[0].length, 10.0, 1e-12);
}

// Straight metal1 wire, 100 um x 1 um: 100 squares * 0.078 ohm/sq = 7.8 ohm.
TEST(ExtractorTest, StraightWireResistance) {
    auto t = tech::generic180();
    std::vector<layout::Shape> shapes{{L::kMetal[0], geom::Rect(0, 0, 100, 1)}};
    auto nets = layout::extract_connectivity(shapes, {}, t);
    std::vector<WirePin> pins{
        {"a", L::kMetal[0], {0.5, 0.5}},
        {"b", L::kMetal[0], {99.5, 0.5}},
    };
    auto model = extract_interconnect(shapes, nets, t, pins);
    // Solve: 1 A into a, out of b.
    circuit::Netlist& nl = model.netlist;
    nl.add<circuit::ISource>("drive", nl.existing_node("b"), nl.existing_node("a"),
                             circuit::Waveform::dc(1.0));
    nl.add<circuit::Resistor>("ref", nl.existing_node("b"), circuit::kGround, 1e-3);
    auto x = sim::operating_point(nl);
    const double r = circuit::volt(x, nl.existing_node("a")) -
                     circuit::volt(x, nl.existing_node("b"));
    EXPECT_NEAR(r, 0.078 * 99.0, 0.05 * r); // pins sit 0.5um from the ends
}

TEST(ExtractorTest, WidthHalvesResistance) {
    auto t = tech::generic180();
    auto run = [&](double width) {
        std::vector<layout::Shape> shapes{{L::kMetal[0], geom::Rect(0, 0, 100, width)}};
        auto nets = layout::extract_connectivity(shapes, {}, t);
        std::vector<WirePin> pins{
            {"a", L::kMetal[0], {0.0, width / 2}},
            {"b", L::kMetal[0], {100.0, width / 2}},
        };
        auto model = extract_interconnect(shapes, nets, t, pins);
        const auto* st = model.stats_for("net0");
        return st ? st->resistance_squares : -1.0;
    };
    const double sq1 = run(1.0);
    const double sq2 = run(2.0);
    EXPECT_NEAR(sq1 / sq2, 2.0, 1e-6);
}

TEST(ExtractorTest, ViaAddsResistance) {
    auto t = tech::generic180();
    std::vector<layout::Shape> shapes{
        {L::kMetal[0], geom::Rect(0, 0, 20, 1)},
        {L::kMetal[1], geom::Rect(18, -10, 19, 1)},
        {L::kVia[0], geom::Rect(18.2, 0.2, 18.8, 0.8)},
    };
    auto nets = layout::extract_connectivity(shapes, {}, t);
    EXPECT_EQ(nets.net_count, 1u);
    std::vector<WirePin> pins{
        {"a", L::kMetal[0], {0.5, 0.5}},
        {"b", L::kMetal[1], {18.5, -9.5}},
    };
    auto model = extract_interconnect(shapes, nets, t, pins);
    bool has_via = false;
    for (const auto& d : model.netlist.devices())
        if (d->name().rfind("via#", 0) == 0) has_via = true;
    EXPECT_TRUE(has_via);
}

TEST(ExtractorTest, CapacitanceGoesToNamedSubstrateNode) {
    auto t = tech::generic180();
    std::vector<layout::Shape> shapes{{L::kMetal[0], geom::Rect(0, 0, 200, 2)}};
    auto nets = layout::extract_connectivity(
        shapes, {{"vgnd", L::kMetal[0], {100, 1}}}, t);
    std::vector<WirePin> pins{
        {"a", L::kMetal[0], {0.5, 1}},
        {"b", L::kMetal[0], {199.5, 1}},
    };
    ExtractOptions opt;
    opt.substrate_node = [](const geom::Rect&, const std::string&) {
        return std::string("subsurf");
    };
    auto model = extract_interconnect(shapes, nets, t, pins, opt);
    EXPECT_TRUE(model.netlist.has_node("subsurf"));
    const auto* st = model.stats_for("vgnd");
    ASSERT_NE(st, nullptr);
    // 200x2 um wire: area cap 400*0.031 aF + fringe ~2*200*0.035 aF ~ 26 fF.
    EXPECT_NEAR(st->capacitance_total, 26e-15, 8e-15);
}

TEST(ExtractorTest, IdealInterconnectAblation) {
    // With extract_resistance=false every segment is a milliohm short --
    // the "classical flow" the paper improves upon.
    auto t = tech::generic180();
    std::vector<layout::Shape> shapes{{L::kMetal[0], geom::Rect(0, 0, 100, 1)}};
    auto nets = layout::extract_connectivity(shapes, {}, t);
    std::vector<WirePin> pins{
        {"a", L::kMetal[0], {0.5, 0.5}},
        {"b", L::kMetal[0], {99.5, 0.5}},
    };
    ExtractOptions opt;
    opt.extract_resistance = false;
    auto model = extract_interconnect(shapes, nets, t, pins, opt);
    circuit::Netlist& nl = model.netlist;
    nl.add<circuit::ISource>("drive", nl.existing_node("b"), nl.existing_node("a"),
                             circuit::Waveform::dc(1.0));
    nl.add<circuit::Resistor>("ref", nl.existing_node("b"), circuit::kGround, 1e-3);
    auto x = sim::operating_point(nl);
    const double r = circuit::volt(x, nl.existing_node("a")) -
                     circuit::volt(x, nl.existing_node("b"));
    EXPECT_LT(r, 0.01);
}

TEST(ExtractorTest, PinOffWireThrows) {
    auto t = tech::generic180();
    std::vector<layout::Shape> shapes{{L::kMetal[0], geom::Rect(0, 0, 10, 1)}};
    auto nets = layout::extract_connectivity(shapes, {}, t);
    std::vector<WirePin> pins{{"a", L::kMetal[0], {50, 50}}};
    EXPECT_THROW(extract_interconnect(shapes, nets, t, pins), Error);
}

TEST(ExtractorTest, SerpentineEndToEnd) {
    // A serpentine strap: total squares must match the sum of leg lengths.
    auto t = tech::generic180();
    auto rects = geom::make_serpentine({0, 0}, 50.0, 1.0, 5.0, 4);
    std::vector<layout::Shape> shapes;
    for (const auto& r : rects) shapes.push_back({L::kMetal[0], r});
    auto nets = layout::extract_connectivity(shapes, {}, t);
    EXPECT_EQ(nets.net_count, 1u);
    std::vector<WirePin> pins{
        {"start", L::kMetal[0], {0.2, 0.5}},
        {"end", L::kMetal[0], {49.8, 15.5}},
    };
    auto model = extract_interconnect(shapes, nets, t, pins);
    circuit::Netlist& nl = model.netlist;
    nl.add<circuit::ISource>("drive", nl.existing_node("end"), nl.existing_node("start"),
                             circuit::Waveform::dc(1.0));
    nl.add<circuit::Resistor>("ref", nl.existing_node("end"), circuit::kGround, 1e-3);
    auto x = sim::operating_point(nl);
    const double r = circuit::volt(x, nl.existing_node("start")) -
                     circuit::volt(x, nl.existing_node("end"));
    // ~4 legs x 50 squares = 200 squares * 0.078 = 15.6 ohm (stubs add a bit,
    // corner sharing removes a bit).
    EXPECT_GT(r, 10.0);
    EXPECT_LT(r, 22.0);
}

} // namespace
} // namespace snim::interconnect
