#include <gtest/gtest.h>

#include <cmath>

#include "dsp/fft.hpp"
#include "dsp/goertzel.hpp"
#include "dsp/spectrum.hpp"
#include "dsp/window.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace snim::dsp {
namespace {

using snim::units::kTwoPi;

std::vector<double> tone(size_t n, double fs, double f, double amp, double phase = 0.0) {
    std::vector<double> x(n);
    for (size_t i = 0; i < n; ++i)
        x[i] = amp * std::cos(kTwoPi * f * static_cast<double>(i) / fs + phase);
    return x;
}

TEST(FftTest, NextPow2) {
    EXPECT_EQ(next_pow2(1), 1u);
    EXPECT_EQ(next_pow2(2), 2u);
    EXPECT_EQ(next_pow2(3), 4u);
    EXPECT_EQ(next_pow2(1000), 1024u);
}

TEST(FftTest, DeltaHasFlatSpectrum) {
    std::vector<std::complex<double>> a(8, {0, 0});
    a[0] = {1, 0};
    fft(a);
    for (const auto& v : a) EXPECT_NEAR(std::abs(v), 1.0, 1e-12);
}

TEST(FftTest, RoundTrip) {
    std::vector<std::complex<double>> a(64);
    for (size_t i = 0; i < a.size(); ++i)
        a[i] = {std::sin(0.3 * static_cast<double>(i)), std::cos(0.11 * static_cast<double>(i))};
    auto b = a;
    fft(b);
    ifft(b);
    for (size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(std::abs(a[i] - b[i]), 0.0, 1e-10);
}

TEST(FftTest, ToneLandsInCorrectBin) {
    const size_t n = 256;
    const double fs = 256.0;
    auto x = tone(n, fs, 32.0, 1.0);
    auto spec = fft_real(x);
    // Bin 32 should hold amplitude n/2.
    EXPECT_NEAR(std::abs(spec[32]), n / 2.0, 1e-9);
    EXPECT_NEAR(std::abs(spec[31]), 0.0, 1e-9);
}

TEST(FftTest, RejectsNonPow2) {
    std::vector<std::complex<double>> a(10);
    EXPECT_THROW(fft(a), snim::Error);
}

TEST(FftTest, Linearity) {
    std::vector<std::complex<double>> a(16), b(16), sum(16);
    for (size_t i = 0; i < 16; ++i) {
        a[i] = {double(i), 0.0};
        b[i] = {0.0, double(i % 3)};
        sum[i] = a[i] + b[i];
    }
    fft(a);
    fft(b);
    fft(sum);
    for (size_t i = 0; i < 16; ++i) EXPECT_NEAR(std::abs(sum[i] - a[i] - b[i]), 0.0, 1e-10);
}

TEST(WindowTest, HannEndsAtZero) {
    auto w = make_window(WindowKind::Hann, 64);
    EXPECT_NEAR(w[0], 0.0, 1e-12);
    EXPECT_NEAR(w[63], 0.0, 1e-12);
    EXPECT_NEAR(w[31], 1.0, 0.01);
}

TEST(WindowTest, RectProperties) {
    auto w = make_window(WindowKind::Rect, 100);
    EXPECT_DOUBLE_EQ(window_sum(w), 100.0);
    EXPECT_NEAR(window_enbw(w), 1.0, 1e-12);
}

TEST(WindowTest, EnbwOrdering) {
    // Wider-mainlobe windows have larger ENBW.
    const size_t n = 512;
    const double rect = window_enbw(make_window(WindowKind::Rect, n));
    const double hann = window_enbw(make_window(WindowKind::Hann, n));
    const double bh = window_enbw(make_window(WindowKind::BlackmanHarris4, n));
    EXPECT_LT(rect, hann);
    EXPECT_LT(hann, bh);
    EXPECT_NEAR(hann, 1.5, 0.02);
    EXPECT_NEAR(bh, 2.0, 0.05);
}

TEST(WindowTest, Names) {
    EXPECT_EQ(to_string(WindowKind::Hann), "hann");
    EXPECT_EQ(to_string(WindowKind::BlackmanHarris4), "blackman-harris4");
    EXPECT_GE(mainlobe_halfwidth_bins(WindowKind::BlackmanHarris4), 4.0);
}

TEST(GoertzelTest, MatchesFftBin) {
    const size_t n = 128;
    std::vector<double> x(n);
    for (size_t i = 0; i < n; ++i)
        x[i] = std::sin(kTwoPi * 10.0 * static_cast<double>(i) / n) +
               0.3 * std::cos(kTwoPi * 23.0 * static_cast<double>(i) / n);
    auto spec = fft_real(x);
    const auto g10 = goertzel(x, 10.0 / n);
    const auto g23 = goertzel(x, 23.0 / n);
    EXPECT_NEAR(std::abs(g10 - spec[10]), 0.0, 1e-9);
    EXPECT_NEAR(std::abs(g23 - spec[23]), 0.0, 1e-9);
}

TEST(GoertzelTest, ToneAmplitudeExactBin) {
    const size_t n = 4096;
    const double fs = 1e9;
    const double f = fs * 100.0 / n; // exact bin
    auto x = tone(n, fs, f, 0.25);
    const auto w = make_window(WindowKind::BlackmanHarris4, n);
    EXPECT_NEAR(tone_amplitude(x, fs, f, w), 0.25, 1e-6);
}

TEST(GoertzelTest, ToneAmplitudeOffBin) {
    // Non-bin-aligned tone: windowed Goertzel still reads the amplitude
    // to within a small scalloping error.
    const size_t n = 8192;
    const double fs = 1e9;
    const double f = 13.777e6;
    auto x = tone(n, fs, f, 0.1, 0.7);
    const auto w = make_window(WindowKind::BlackmanHarris4, n);
    EXPECT_NEAR(tone_amplitude(x, fs, f, w), 0.1, 0.002);
}

TEST(GoertzelTest, SmallToneNextToCarrier) {
    // A -60 dBc spur 16 bins from a full-scale carrier must be readable
    // through the Blackman-Harris sidelobes.
    const size_t n = 65536;
    const double fs = 1e9;
    const double fc = 200e6;
    const double df = 16.0 * fs / n;
    auto x = tone(n, fs, fc, 1.0);
    auto s = tone(n, fs, fc + df, 1e-3, 1.3);
    for (size_t i = 0; i < n; ++i) x[i] += s[i];
    const auto w = make_window(WindowKind::BlackmanHarris4, n);
    const double a = tone_amplitude(x, fs, fc + df, w);
    EXPECT_NEAR(a, 1e-3, 0.1e-3);
}

TEST(GoertzelTest, RefineFindsTrueFrequency) {
    const size_t n = 16384;
    const double fs = 1e9;
    const double f = 123.4567e6;
    auto x = tone(n, fs, f, 0.8);
    const auto w = make_window(WindowKind::BlackmanHarris4, n);
    const double fr = refine_tone_frequency(x, fs, 123e6, 1e6, w);
    EXPECT_NEAR(fr, f, 2e3);
}

TEST(SpectrumTest, SinglePeakDetected) {
    const size_t n = 2048;
    const double fs = 100e6;
    auto x = tone(n, fs, 10e6, 0.5);
    auto s = amplitude_spectrum(x, fs);
    auto peaks = find_peaks(s, 0.05);
    ASSERT_GE(peaks.size(), 1u);
    EXPECT_NEAR(peaks[0].freq, 10e6, 2.0 * fs / n);
    EXPECT_NEAR(peaks[0].amp, 0.5, 0.02);
}

TEST(SpectrumTest, TwoTonesSortedByAmplitude) {
    const size_t n = 4096;
    const double fs = 100e6;
    auto x = tone(n, fs, 10e6, 0.2);
    auto y = tone(n, fs, 25e6, 0.6);
    for (size_t i = 0; i < n; ++i) x[i] += y[i];
    auto s = amplitude_spectrum(x, fs);
    auto peaks = find_peaks(s, 0.05, 4);
    ASSERT_GE(peaks.size(), 2u);
    EXPECT_NEAR(peaks[0].freq, 25e6, 2.0 * fs / n);
    EXPECT_NEAR(peaks[1].freq, 10e6, 2.0 * fs / n);
}

TEST(SpectrumTest, PeakDbm) {
    Peak p{1e6, 0.1778}; // ~ -5 dBm into 50 ohm
    EXPECT_NEAR(peak_dbm(p), -5.0, 0.05);
}

class WindowSweep : public ::testing::TestWithParam<WindowKind> {};

TEST_P(WindowSweep, AmplitudeRecoveryWithinTolerance) {
    const size_t n = 4096;
    const double fs = 1e9;
    const double f = fs * 300.0 / n;
    auto x = tone(n, fs, f, 0.42);
    const auto w = make_window(GetParam(), n);
    EXPECT_NEAR(tone_amplitude(x, fs, f, w), 0.42, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(AllWindows, WindowSweep,
                         ::testing::Values(WindowKind::Rect, WindowKind::Hann,
                                           WindowKind::Hamming,
                                           WindowKind::BlackmanHarris4));

} // namespace
} // namespace snim::dsp
