#include <gtest/gtest.h>

#include <cmath>

#include "circuit/passives.hpp"
#include "circuit/sources.hpp"
#include "package/package.hpp"
#include "sim/ac.hpp"
#include "sim/op.hpp"
#include "util/units.hpp"

namespace snim::package {
namespace {

using namespace snim::circuit;

TEST(PackageTest, InstantiateCreatesDevices) {
    PackageModel pkg;
    pkg.wires.push_back({"pad_gnd", "0", 1e-9, 0.2, 100e-15, "0"});
    Netlist nl;
    pkg.instantiate(nl);
    EXPECT_TRUE(nl.has_node("pad_gnd"));
    EXPECT_EQ(nl.device_count(), 2u); // L + pad cap
    auto* l = nl.find_as<Inductor>("pkg:l0");
    ASSERT_NE(l, nullptr);
    EXPECT_DOUBLE_EQ(l->inductance(), 1e-9);
    EXPECT_DOUBLE_EQ(l->series_res(), 0.2);
}

TEST(PackageTest, DefaultRfPackage) {
    auto pkg = default_rf_package({"vdd_pad", "gnd_pad", "out_pad"});
    EXPECT_EQ(pkg.wires.size(), 3u);
    Netlist nl;
    pkg.instantiate(nl);
    EXPECT_EQ(nl.device_count(), 6u);
}

TEST(PackageTest, BondwireImpedanceRisesWithFrequency) {
    PackageModel pkg;
    pkg.wires.push_back({"pad", "0", 1e-9, 0.1, 0.0, "0"});
    Netlist nl;
    pkg.instantiate(nl);
    nl.add<ISource>("drive", kGround, nl.existing_node("pad"), Waveform::dc(0.0),
                    AcSpec{1.0, 0.0});
    auto xop = sim::operating_point(nl);
    auto ac = sim::ac_sweep(nl, {1e6, 1e9}, xop);
    const NodeId pad = nl.existing_node("pad");
    const double z_low = std::abs(ac.at(0, pad));
    const double z_high = std::abs(ac.at(1, pad));
    EXPECT_LT(z_low, 1.0);
    // |Z| at 1 GHz ~ 2 pi * 1e9 * 1e-9 = 6.3 ohm.
    EXPECT_NEAR(z_high, units::kTwoPi, 0.3);
}

TEST(PackageTest, GroundBounceSeparatesReferences) {
    // On-chip ground behind a bondwire bounces when current is injected,
    // while the board ground stays clean by construction.
    PackageModel pkg;
    pkg.wires.push_back({"chip_gnd", "0", 1.2e-9, 0.15, 0.0, "0"});
    Netlist nl;
    pkg.instantiate(nl);
    nl.add<ISource>("noise", kGround, nl.existing_node("chip_gnd"), Waveform::dc(0.0),
                    AcSpec{1e-3, 0.0});
    auto xop = sim::operating_point(nl);
    auto ac = sim::ac_sweep(nl, {10e6}, xop);
    const double bounce = std::abs(ac.at(0, nl.existing_node("chip_gnd")));
    // 1 mA through |Z| = R + j w L: ~ 1mA * |0.15 + j0.075| ohm.
    EXPECT_GT(bounce, 1e-4 * 0.5);
    EXPECT_LT(bounce, 1e-3);
}

} // namespace
} // namespace snim::package
