// Solver hot-path and parallel-sweep engine suite.
//
// The contracts under test are bitwise, not approximate:
//   * ReusableLU's refactor path must reproduce a fresh factorization of the
//     same matrix exactly (same pivot sequence -> same update order -> same
//     floating-point result),
//   * the Stamper's compiled scatter must reproduce the triplet-built CSC,
//   * every sweep must produce byte-identical results, counters and
//     time-series for any thread count.
// Runs as its own binary (ctest label `perf`, also the TSan CI target)
// because it arms global fault windows and asserts on the global registry.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <complex>
#include <vector>

#include "circuit/netlist.hpp"
#include "circuit/passives.hpp"
#include "circuit/sources.hpp"
#include "circuit/stamp.hpp"
#include "dsp/fft.hpp"
#include "numeric/sparse_lu.hpp"
#include "numeric/vecops.hpp"
#include "obs/parallel.hpp"
#include "obs/registry.hpp"
#include "obs/timeseries.hpp"
#include "rf/spur.hpp"
#include "sim/ac.hpp"
#include "sim/transient.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

using namespace snim;

namespace {

class ParallelTest : public ::testing::Test {
protected:
    void SetUp() override {
        fault::clear();
        util::set_default_thread_count(1);
#if SNIM_OBS_ENABLED
        obs::reset();
        obs::set_enabled(false);
#endif
    }
    void TearDown() override {
        fault::clear();
        util::set_default_thread_count(1);
#if SNIM_OBS_ENABLED
        obs::reset();
        obs::set_enabled(false);
#endif
    }
};

/// Diagonally dominant sparse test matrix with a fixed pattern; `salt`
/// changes only the values, never the pattern.
SparseCSC<double> test_matrix(size_t n, double salt) {
    Rng rng(42);
    Triplets<double> t(n);
    for (size_t i = 0; i < n; ++i) t.add(i, i, 10.0 + rng.uniform(0, 1) + salt);
    for (size_t i = 0; i < n; ++i)
        for (int k = 0; k < 3; ++k)
            t.add(i, static_cast<size_t>(rng.uniform_int(0, static_cast<int>(n) - 1)),
                  rng.uniform(-1, 1) * (1.0 + salt));
    return SparseCSC<double>(t);
}

/// RC ladder with an AC-excited source, big enough for a multi-chunk sweep.
circuit::Netlist ac_ladder(int stages) {
    circuit::Netlist nl;
    nl.add<circuit::VSource>("vin", nl.node("n0"), circuit::kGround,
                             circuit::Waveform::dc(0.0), circuit::AcSpec{1.0, 0.0});
    for (int i = 0; i < stages; ++i) {
        nl.add<circuit::Resistor>(format("r%d", i), nl.node(format("n%d", i)),
                                  nl.node(format("n%d", i + 1)), 1e3);
        nl.add<circuit::Capacitor>(format("c%d", i), nl.node(format("n%d", i + 1)),
                                   circuit::kGround, 1e-12);
    }
    return nl;
}

circuit::Netlist sine_rc_netlist() {
    circuit::Netlist nl;
    nl.add<circuit::VSource>("vin", nl.node("in"), circuit::kGround,
                             circuit::Waveform::sin(0.0, 1.0, 50e6));
    nl.add<circuit::Resistor>("r1", nl.node("in"), nl.node("out"), 1e3);
    nl.add<circuit::Capacitor>("c1", nl.node("out"), circuit::kGround, 1e-12);
    return nl;
}

// --- thread pool ----------------------------------------------------------

TEST_F(ParallelTest, ThreadPoolRunsEveryIndexOnce) {
    util::ThreadPool pool(4);
    EXPECT_EQ(pool.thread_count(), 4);
    std::vector<std::atomic<int>> hits(100);
    for (auto& h : hits) h = 0;
    pool.parallel_for_indexed(100, [&](size_t i) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_F(ParallelTest, ThreadPoolCountBelowThreads) {
    util::ThreadPool pool(8);
    std::vector<std::atomic<int>> hits(3);
    for (auto& h : hits) h = 0;
    pool.parallel_for_indexed(3, [&](size_t i) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
    pool.parallel_for_indexed(0, [&](size_t) { FAIL(); });
}

TEST_F(ParallelTest, ThreadPoolRethrowsLowestIndexException) {
    util::ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(64);
    for (auto& h : hits) h = 0;
    try {
        pool.parallel_for_indexed(64, [&](size_t i) {
            ++hits[i];
            if (i == 3 || i == 7) raise("boom at %zu", i);
        });
        FAIL() << "expected an exception";
    } catch (const Error& e) {
        EXPECT_NE(std::string(e.what()).find("boom at 3"), std::string::npos)
            << "lowest throwing index must win, got: " << e.what();
    }
    // Every index still ran despite the failures (no abandoned work).
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_F(ParallelTest, DefaultThreadCountIsClamped) {
    util::set_default_thread_count(500);
    EXPECT_EQ(util::default_thread_count(), 256);
    util::set_default_thread_count(-3);
    EXPECT_EQ(util::default_thread_count(), 1);
    util::set_default_thread_count(4);
    EXPECT_EQ(util::ThreadPool(0).thread_count(), 4);
    util::set_default_thread_count(1);
}

// --- reusable LU ----------------------------------------------------------

TEST_F(ParallelTest, RefactorIsBitIdenticalToFreshFactorization) {
    const size_t n = 60;
    const auto a1 = test_matrix(n, 0.0);
    const auto a2 = test_matrix(n, 0.25); // same pattern, different values

    SparseLU<double> fresh2(a2);
    SparseLU<double> refd(a1);
    ASSERT_TRUE(refd.refactor(a2));

    std::vector<double> b(n);
    for (size_t i = 0; i < n; ++i) b[i] = std::sin(static_cast<double>(i));
    const auto x_fresh = fresh2.solve(b);
    const auto x_refd = refd.solve(b);
    ASSERT_EQ(x_fresh.size(), x_refd.size());
    for (size_t i = 0; i < n; ++i)
        EXPECT_EQ(x_fresh[i], x_refd[i]) << "solution differs at " << i;
    EXPECT_EQ(fresh2.factor_stats().min_pivot, refd.factor_stats().min_pivot);

    const auto xt_fresh = fresh2.solve_transpose(b);
    const auto xt_refd = refd.solve_transpose(b);
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(xt_fresh[i], xt_refd[i]);
}

TEST_F(ParallelTest, RefactorReturnsFalseOnExactZeroPivot) {
    Triplets<double> t(2);
    t.add(0, 0, 2.0);
    t.add(1, 0, 1.0);
    t.add(0, 1, 1.0);
    t.add(1, 1, 2.0);
    SparseLU<double> lu{SparseCSC<double>(t)};

    Triplets<double> t2(2);
    t2.add(0, 0, 1.0);
    t2.add(1, 0, 1.0);
    t2.add(0, 1, 1.0);
    t2.add(1, 1, 1.0); // second pivot: 1 - 1*1 = 0 exactly
    EXPECT_FALSE(lu.refactor(SparseCSC<double>(t2)));
}

TEST_F(ParallelTest, ReusableLuRecoversFromZeroPivotRefactor) {
    Triplets<double> t(2);
    t.add(0, 0, 2.0);
    t.add(1, 0, 1.0);
    t.add(0, 1, 1.0);
    t.add(1, 1, 2.0);
    ReusableLU<double> rlu;
    rlu.factor(SparseCSC<double>(t));

    // Singular on the reuse path -> the guard falls back to a full
    // factorization, which raises like a fresh SparseLU would.
    Triplets<double> t2(2);
    t2.add(0, 0, 1.0);
    t2.add(1, 0, 1.0);
    t2.add(0, 1, 1.0);
    t2.add(1, 1, 1.0);
    EXPECT_THROW(rlu.factor(SparseCSC<double>(t2)), Error);

    // A later well-conditioned matrix factors cleanly again.
    Triplets<double> t3(2);
    t3.add(0, 0, 3.0);
    t3.add(1, 0, 1.0);
    t3.add(0, 1, 1.0);
    t3.add(1, 1, 3.0);
    rlu.factor(SparseCSC<double>(t3));
    const auto x = rlu.solve({1.0, 1.0});
    EXPECT_NEAR(x[0], 0.25, 1e-12);
    EXPECT_NEAR(x[1], 0.25, 1e-12);
}

#if SNIM_OBS_ENABLED
TEST_F(ParallelTest, ReusableLuCountsReuseAndGuardFallbacks) {
    obs::set_enabled(true);
    const size_t n = 40;
    ReusableLU<double> rlu;
    rlu.factor(test_matrix(n, 0.0)); // full: no reuse counters
    EXPECT_EQ(obs::counter_value("numeric/lu_refactor"), 0u);

    rlu.factor(test_matrix(n, 0.5)); // same pattern -> kept refactor
    EXPECT_EQ(obs::counter_value("numeric/lu_refactor"), 1u);
    EXPECT_EQ(obs::counter_value("numeric/lu_symbolic_reuse"), 1u);
    EXPECT_EQ(obs::counter_value("numeric/lu_repivot_fallbacks"), 0u);

    // Same pattern, values scaled down by 1e6: the refactored min pivot
    // drops far below repivot_tol * reference -> guarded full re-pivot.
    auto tiny = test_matrix(n, 0.0);
    for (auto& v : tiny.values_mut()) v *= 1e-6;
    rlu.factor(tiny);
    EXPECT_EQ(obs::counter_value("numeric/lu_refactor"), 2u);
    EXPECT_EQ(obs::counter_value("numeric/lu_symbolic_reuse"), 1u);
    EXPECT_EQ(obs::counter_value("numeric/lu_repivot_fallbacks"), 1u);

    // The fallback refreshed the min-pivot reference: an equally tiny
    // matrix now reuses instead of thrashing through full factorizations.
    auto tiny2 = test_matrix(n, 0.5);
    for (auto& v : tiny2.values_mut()) v *= 1e-6;
    rlu.factor(tiny2);
    EXPECT_EQ(obs::counter_value("numeric/lu_symbolic_reuse"), 2u);
    EXPECT_EQ(obs::counter_value("numeric/lu_repivot_fallbacks"), 1u);

    // A different sparsity pattern silently takes the full path.
    rlu.factor(test_matrix(n + 1, 0.0));
    EXPECT_EQ(obs::counter_value("numeric/lu_refactor"), 3u);
}
#endif // SNIM_OBS_ENABLED

// --- compiled stamp assembly ----------------------------------------------

TEST_F(ParallelTest, CompiledStamperMatchesTripletAssemblyBitwise) {
    auto stamp_pass = [](circuit::RealStamper& s, double g1, double g2) {
        s.admittance(0, 1, g1);
        s.admittance(1, 2, g2);
        s.entry(0, 0, 0.0); // structural zero: nonzero on later passes
        s.entry(2, 2, g1 * g2);
        s.entry(0, 0, g2); // duplicate of the (0,0) slots above
        s.rhs_current(0, 1.0);
    };

    circuit::RealStamper compiled(3);
    compiled.enable_compiled_assembly();
    circuit::RealStamper reference(3);

    const double cases[][2] = {{1.0, 2.0}, {0.5, -3.0}, {7.0, 0.0}};
    for (const auto& c : cases) {
        compiled.clear();
        stamp_pass(compiled, c[0], c[1]);
        const auto& fast = compiled.csc();

        reference.clear();
        stamp_pass(reference, c[0], c[1]);
        reference.matrix().set_keep_zeros(true);
        const SparseCSC<double> slow(reference.matrix());

        ASSERT_EQ(fast.nnz(), slow.nnz());
        EXPECT_EQ(fast.col_ptr(), slow.col_ptr());
        EXPECT_EQ(fast.row_idx(), slow.row_idx());
        for (size_t k = 0; k < fast.nnz(); ++k)
            EXPECT_EQ(fast.values()[k], slow.values()[k]) << "slot " << k;
        EXPECT_EQ(compiled.rhs(), reference.rhs());
    }
    EXPECT_TRUE(compiled.compiled_mode());
}

TEST_F(ParallelTest, CompiledStamperDemotesOnSequenceChangeAndRelearns) {
#if SNIM_OBS_ENABLED
    obs::set_enabled(true);
#endif
    circuit::RealStamper s(3);
    s.enable_compiled_assembly();
    s.admittance(0, 1, 1.0);
    (void)s.csc(); // learn

    // A deviating pass: extra stamp not in the learned sequence.
    s.clear();
    s.admittance(0, 1, 2.0);
    s.entry(2, 2, 5.0);
    const auto& a = s.csc(); // demoted, rebuilt from triplets, relearned
    EXPECT_EQ(a.to_dense()(2, 2), 5.0);
    EXPECT_EQ(a.to_dense()(0, 0), 2.0);
#if SNIM_OBS_ENABLED
    EXPECT_EQ(obs::counter_value("circuit/stamp_map_fallbacks"), 1u);
#endif

    // The relearned map compiles the NEW sequence.
    s.clear();
    s.admittance(0, 1, 3.0);
    s.entry(2, 2, 7.0);
    const auto& b = s.csc();
    EXPECT_TRUE(s.compiled_mode());
    EXPECT_EQ(b.to_dense()(2, 2), 7.0);
    EXPECT_EQ(b.to_dense()(0, 0), 3.0);
}

// --- transient engine -----------------------------------------------------

TEST_F(ParallelTest, TransientReuseMatchesForcedFreshFactorizationBitwise) {
    sim::TranOptions opt;
    opt.dt = 1e-9;
    opt.tstop = 50e-9;

    auto nl1 = sine_rc_netlist();
    const auto reuse = sim::transient(nl1, {"out"}, opt);

    auto nl2 = sine_rc_netlist();
    opt.reuse_lu = false;
    opt.dense_crossover = 0; // legacy engine, forced fresh SPARSE factorization
    const auto fresh = sim::transient(nl2, {"out"}, opt);

    ASSERT_EQ(reuse.time.size(), fresh.time.size());
    ASSERT_EQ(reuse.wave("out").size(), fresh.wave("out").size());
    for (size_t k = 0; k < reuse.wave("out").size(); ++k)
        EXPECT_EQ(reuse.wave("out")[k], fresh.wave("out")[k]) << "sample " << k;
}

#if SNIM_FAULTS_ENABLED
TEST_F(ParallelTest, ForcedRepivotFallsBackWithoutChangingTheWaveform) {
    sim::TranOptions opt;
    opt.dt = 1e-9;
    opt.tstop = 50e-9;

    auto nl1 = sine_rc_netlist();
    const auto clean = sim::transient(nl1, {"out"}, opt);

#if SNIM_OBS_ENABLED
    obs::set_enabled(true);
#endif
    fault::arm({"numeric.lu.repivot", 5, 3}); // force 3 full re-pivots
    auto nl2 = sine_rc_netlist();
    const auto faulted = sim::transient(nl2, {"out"}, opt);
    EXPECT_EQ(fault::trips("numeric.lu.repivot"), 3);
#if SNIM_OBS_ENABLED
    EXPECT_EQ(obs::counter_value("numeric/lu_repivot_fallbacks"), 3u);
    EXPECT_GT(obs::counter_value("numeric/lu_symbolic_reuse"), 0u);
#endif

    // A forced full factorization picks the same pivots the reference run's
    // refactor reproduces, so the waveform must not move by a single bit.
    ASSERT_EQ(clean.wave("out").size(), faulted.wave("out").size());
    for (size_t k = 0; k < clean.wave("out").size(); ++k)
        EXPECT_EQ(clean.wave("out")[k], faulted.wave("out")[k]) << "sample " << k;
}
#endif // SNIM_FAULTS_ENABLED

#if SNIM_OBS_ENABLED
TEST_F(ParallelTest, IncrementalTransientIsThreadCountInvariant) {
    // The incremental engine (assembler cache, partial refactors, guarded
    // modified Newton, predictor) is serial per run, but it must neither
    // read nor leak any thread-pool state: waveform bytes AND the assembly
    // / factorization counters have to match for any thread count.
    sim::TranOptions opt;
    opt.dt = 1e-9;
    opt.tstop = 50e-9;

    std::vector<double> ref_wave;
    uint64_t ref_incr = 0, ref_partial = 0, ref_hits = 0;
    for (const int threads : {1, 4}) {
        util::set_default_thread_count(threads);
        obs::reset();
        obs::set_enabled(true);
        auto nl = sine_rc_netlist();
        const auto res = sim::transient(nl, {"out"}, opt);
        const uint64_t incr = obs::counter_value("sim/assemble_incremental");
        const uint64_t partial = obs::counter_value("numeric/lu_partial_refactor");
        const uint64_t hits = obs::counter_value("sim/assemble_cache_hits");
        EXPECT_EQ(obs::counter_value("sim/assemble_full"), 1u);
        EXPECT_GT(incr, 0u);
        if (threads == 1) {
            ref_wave = res.wave("out");
            ref_incr = incr;
            ref_partial = partial;
            ref_hits = hits;
            continue;
        }
        ASSERT_EQ(ref_wave.size(), res.wave("out").size());
        EXPECT_EQ(0, std::memcmp(ref_wave.data(), res.wave("out").data(),
                                 ref_wave.size() * sizeof(double)));
        EXPECT_EQ(ref_incr, incr);
        EXPECT_EQ(ref_partial, partial);
        EXPECT_EQ(ref_hits, hits);
    }
}
#endif

// --- AC sweep determinism -------------------------------------------------

struct AcRun {
    sim::AcResult res;
    std::vector<double> ts_min_pivot;
    std::vector<double> ts_fill;
    uint64_t reuse = 0, refactor = 0, fallbacks = 0;
};

AcRun run_ac(int threads, bool reuse_lu) {
    auto nl = ac_ladder(30);
    nl.finalize();
    const std::vector<double> xop(nl.unknown_count(), 0.0);
    const auto freqs = linspace(1e6, 1e9, 64);
    sim::AcOptions opt;
    opt.threads = threads;
    opt.reuse_lu = reuse_lu;
#if SNIM_OBS_ENABLED
    obs::reset();
    obs::set_enabled(true);
#endif
    AcRun out;
    out.res = sim::ac_sweep(nl, freqs, xop, opt);
#if SNIM_OBS_ENABLED
    if (auto ts = obs::ts_get("sim/ac/lu_min_pivot")) out.ts_min_pivot = ts->value;
    if (auto ts = obs::ts_get("sim/ac/lu_fill_growth")) out.ts_fill = ts->value;
    out.reuse = obs::counter_value("numeric/lu_symbolic_reuse");
    out.refactor = obs::counter_value("numeric/lu_refactor");
    out.fallbacks = obs::counter_value("numeric/lu_repivot_fallbacks");
    obs::set_enabled(false);
#endif
    return out;
}

void expect_ac_bitwise_equal(const AcRun& a, const AcRun& b) {
    ASSERT_EQ(a.res.x.size(), b.res.x.size());
    for (size_t k = 0; k < a.res.x.size(); ++k) {
        ASSERT_EQ(a.res.x[k].size(), b.res.x[k].size()) << "point " << k;
        for (size_t i = 0; i < a.res.x[k].size(); ++i)
            EXPECT_EQ(a.res.x[k][i], b.res.x[k][i]) << "point " << k << " node " << i;
    }
    EXPECT_EQ(a.ts_min_pivot, b.ts_min_pivot);
    EXPECT_EQ(a.ts_fill, b.ts_fill);
    EXPECT_EQ(a.reuse, b.reuse);
    EXPECT_EQ(a.refactor, b.refactor);
    EXPECT_EQ(a.fallbacks, b.fallbacks);
}

TEST_F(ParallelTest, AcSweepIsBitIdenticalAcrossThreadCounts) {
    const auto serial = run_ac(1, true);
    const auto par4 = run_ac(4, true);
    const auto par3 = run_ac(3, true); // uneven chunking
    expect_ac_bitwise_equal(serial, par4);
    expect_ac_bitwise_equal(serial, par3);
#if SNIM_OBS_ENABLED
    EXPECT_EQ(serial.refactor, 63u); // every point past the reference
    EXPECT_EQ(serial.reuse + serial.fallbacks, serial.refactor);
#endif
}

TEST_F(ParallelTest, AcSweepReuseMatchesFreshPerPoint) {
    const auto reused = run_ac(4, true);
    const auto fresh = run_ac(1, false);
    ASSERT_EQ(reused.res.x.size(), fresh.res.x.size());
    for (size_t k = 0; k < reused.res.x.size(); ++k)
        for (size_t i = 0; i < reused.res.x[k].size(); ++i)
            EXPECT_EQ(reused.res.x[k][i], fresh.res.x[k][i])
                << "point " << k << " node " << i;
}

// --- obs parallel merge ---------------------------------------------------

#if SNIM_OBS_ENABLED
TEST_F(ParallelTest, ParallelTasksMergesMetricsInIndexOrder) {
    auto body = [](size_t i) {
        obs::count("p/tasks");
        obs::count(format("p/task_%zu", i));
        obs::record_value("p/val", static_cast<double>(i));
        obs::ts_append("p/ts", static_cast<double>(i), std::sqrt(static_cast<double>(i)),
                       "1");
    };

    obs::set_enabled(true);
    for (size_t i = 0; i < 16; ++i) body(i); // serial reference
    const auto ref_ts = obs::ts_get("p/ts");
    const auto ref_counters = obs::counters_snapshot();
    ASSERT_TRUE(ref_ts.has_value());

    obs::reset();
    obs::parallel_tasks(4, 16, body);
    const auto par_ts = obs::ts_get("p/ts");
    ASSERT_TRUE(par_ts.has_value());
    EXPECT_EQ(par_ts->value, ref_ts->value);
    EXPECT_EQ(par_ts->time, ref_ts->time);
    EXPECT_EQ(obs::counters_snapshot(), ref_counters);
    const auto vs = obs::value_stats("p/val");
    ASSERT_TRUE(vs.has_value());
    EXPECT_EQ(vs->count, 16u);
}
#endif // SNIM_OBS_ENABLED

// --- FFT twiddle cache ----------------------------------------------------

TEST_F(ParallelTest, FftMatchesDirectDftAcrossInterleavedSizes) {
    auto direct_dft = [](const std::vector<std::complex<double>>& in) {
        const size_t n = in.size();
        std::vector<std::complex<double>> out(n);
        for (size_t k = 0; k < n; ++k)
            for (size_t j = 0; j < n; ++j)
                out[k] += in[j] * std::polar(1.0, -units::kTwoPi *
                                                      static_cast<double>(k * j) /
                                                      static_cast<double>(n));
        return out;
    };

    Rng rng(7);
    // Interleave sizes so cached stage tables from one size serve the next.
    std::vector<std::complex<double>> first16;
    for (size_t n : {16u, 64u, 16u, 256u, 16u}) {
        std::vector<std::complex<double>> a(n);
        if (n == 16 && !first16.empty()) {
            a = first16; // same input -> cached twiddles must reproduce bits
        } else {
            for (auto& v : a) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
        }
        auto spec = a;
        dsp::fft(spec);
        const auto ref = direct_dft(a);
        for (size_t k = 0; k < n; ++k)
            EXPECT_NEAR(std::abs(spec[k] - ref[k]), 0.0,
                        1e-9 * static_cast<double>(n));

        auto back = spec;
        dsp::ifft(back);
        for (size_t k = 0; k < n; ++k) EXPECT_NEAR(std::abs(back[k] - a[k]), 0.0, 1e-12);

        if (n == 16 && first16.empty()) first16 = a;
    }
}

TEST_F(ParallelTest, FftIsBitStableAcrossRepeatedSizes) {
    Rng rng(9);
    std::vector<std::complex<double>> a(32);
    for (auto& v : a) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    auto s1 = a;
    dsp::fft(s1);
    // Populate other cache entries in between.
    std::vector<std::complex<double>> mid(128, {1.0, 0.0});
    dsp::fft(mid);
    auto s2 = a;
    dsp::fft(s2);
    for (size_t k = 0; k < a.size(); ++k) EXPECT_EQ(s1[k], s2[k]);
}

// --- spur measurement thread invariance -----------------------------------

TEST_F(ParallelTest, SpectralSpurIsThreadCountInvariant) {
    rf::OscCapture cap;
    cap.fs = 64e9;
    cap.fc = 3e9;
    cap.amplitude = 1.0;
    cap.mean = 0.9;
    const double fn = 10e6;
    const size_t samples = 1 << 16;
    cap.wave.resize(samples);
    for (size_t i = 0; i < samples; ++i) {
        const double t = static_cast<double>(i) / cap.fs;
        cap.wave[i] = cap.mean +
                      (1.0 + 0.01 * std::cos(units::kTwoPi * fn * t)) *
                          std::cos(units::kTwoPi * cap.fc * t +
                                   0.02 * std::sin(units::kTwoPi * fn * t));
    }

    util::set_default_thread_count(1);
    const auto serial = rf::measure_spur_spectral(cap, fn);
    util::set_default_thread_count(4);
    const auto parallel = rf::measure_spur_spectral(cap, fn);
    util::set_default_thread_count(1);

    EXPECT_EQ(serial.carrier_amp, parallel.carrier_amp);
    EXPECT_EQ(serial.left_amp, parallel.left_amp);
    EXPECT_EQ(serial.right_amp, parallel.right_amp);
    EXPECT_EQ(serial.freq_dev, parallel.freq_dev);
}

} // namespace
