#include <gtest/gtest.h>

#include <complex>

#include "numeric/dense.hpp"
#include "numeric/sparse.hpp"
#include "numeric/sparse_lu.hpp"
#include "numeric/vecops.hpp"
#include "util/rng.hpp"

namespace snim {
namespace {

using Cplx = std::complex<double>;

TEST(DenseTest, IdentitySolve) {
    auto eye = DenseMatrix<double>::identity(4);
    std::vector<double> b{1, 2, 3, 4};
    auto x = dense_solve(eye, b);
    for (size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(x[i], b[i]);
}

TEST(DenseTest, KnownSystem) {
    DenseMatrix<double> a(2, 2);
    a(0, 0) = 2;
    a(0, 1) = 1;
    a(1, 0) = 1;
    a(1, 1) = 3;
    auto x = dense_solve(a, {5.0, 10.0});
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(DenseTest, PivotingHandlesZeroDiagonal) {
    // MNA-style: zero on the diagonal requires row exchange.
    DenseMatrix<double> a(2, 2);
    a(0, 0) = 0;
    a(0, 1) = 1;
    a(1, 0) = 1;
    a(1, 1) = 0;
    auto x = dense_solve(a, {3.0, 7.0});
    EXPECT_NEAR(x[0], 7.0, 1e-12);
    EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(DenseTest, SingularThrows) {
    DenseMatrix<double> a(2, 2);
    a(0, 0) = 1;
    a(0, 1) = 2;
    a(1, 0) = 2;
    a(1, 1) = 4;
    EXPECT_THROW(DenseLU<double>{a}, Error);
}

TEST(DenseTest, RandomRoundTrip) {
    Rng rng(11);
    for (int trial = 0; trial < 20; ++trial) {
        const size_t n = 1 + static_cast<size_t>(rng.uniform_int(1, 12));
        DenseMatrix<double> a(n, n);
        for (size_t i = 0; i < n; ++i)
            for (size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1, 1);
        for (size_t i = 0; i < n; ++i) a(i, i) += 4.0; // well-conditioned
        std::vector<double> xref(n);
        for (auto& v : xref) v = rng.uniform(-2, 2);
        auto b = a.multiply(xref);
        auto x = dense_solve(a, b);
        EXPECT_LT(max_abs_diff(x, xref), 1e-9);
    }
}

TEST(DenseTest, ComplexSolve) {
    DenseMatrix<Cplx> a(2, 2);
    a(0, 0) = {1, 1};
    a(0, 1) = {0, 0};
    a(1, 0) = {0, 0};
    a(1, 1) = {0, 2};
    auto x = dense_solve<Cplx>(a, {{2, 0}, {4, 0}});
    EXPECT_NEAR(std::abs(x[0] - Cplx(1, -1)), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(x[1] - Cplx(0, -2)), 0.0, 1e-12);
}

TEST(DenseTest, MatrixOps) {
    DenseMatrix<double> a(2, 2), b(2, 2);
    a(0, 0) = 1;
    a(0, 1) = 2;
    a(1, 0) = 3;
    a(1, 1) = 4;
    b = DenseMatrix<double>::identity(2);
    auto c = a * b;
    EXPECT_DOUBLE_EQ(c(1, 0), 3.0);
    auto d = a + a;
    EXPECT_DOUBLE_EQ(d(0, 1), 4.0);
    auto e = a - a;
    EXPECT_DOUBLE_EQ(e(1, 1), 0.0);
    auto t = a.transposed();
    EXPECT_DOUBLE_EQ(t(0, 1), 3.0);
}

TEST(SparseTest, TripletsSumDuplicates) {
    Triplets<double> t(3);
    t.add(0, 0, 1.0);
    t.add(0, 0, 2.0);
    t.add(2, 1, -1.0);
    SparseCSC<double> a(t);
    EXPECT_EQ(a.nnz(), 2u);
    auto d = a.to_dense();
    EXPECT_DOUBLE_EQ(d(0, 0), 3.0);
    EXPECT_DOUBLE_EQ(d(2, 1), -1.0);
}

TEST(SparseTest, ZeroEntriesSkipped) {
    Triplets<double> t(2);
    t.add(0, 0, 0.0);
    EXPECT_EQ(t.entry_count(), 0u);
}

TEST(SparseTest, MultiplyMatchesDense) {
    Rng rng(3);
    Triplets<double> t(6);
    for (int k = 0; k < 25; ++k)
        t.add(static_cast<size_t>(rng.uniform_int(0, 5)),
              static_cast<size_t>(rng.uniform_int(0, 5)), rng.uniform(-1, 1));
    SparseCSC<double> a(t);
    std::vector<double> x(6);
    for (auto& v : x) v = rng.uniform(-1, 1);
    auto y1 = a.multiply(x);
    auto y2 = a.to_dense().multiply(x);
    EXPECT_LT(max_abs_diff(y1, y2), 1e-13);
}

TEST(SparseLUTest, SolvesDiagonal) {
    Triplets<double> t(3);
    t.add(0, 0, 2.0);
    t.add(1, 1, 4.0);
    t.add(2, 2, 8.0);
    SparseLU<double> lu(t);
    auto x = lu.solve({2.0, 4.0, 8.0});
    for (double v : x) EXPECT_NEAR(v, 1.0, 1e-14);
}

TEST(SparseLUTest, ZeroDiagonalNeedsPivot) {
    // Permutation matrix: only off-diagonal entries.
    Triplets<double> t(3);
    t.add(0, 1, 1.0);
    t.add(1, 2, 1.0);
    t.add(2, 0, 1.0);
    SparseLU<double> lu(t);
    auto x = lu.solve({10.0, 20.0, 30.0});
    EXPECT_NEAR(x[0], 30.0, 1e-14);
    EXPECT_NEAR(x[1], 10.0, 1e-14);
    EXPECT_NEAR(x[2], 20.0, 1e-14);
}

TEST(SparseLUTest, SingularThrows) {
    Triplets<double> t(2);
    t.add(0, 0, 1.0);
    t.add(1, 0, 1.0); // column 1 empty -> structurally singular
    EXPECT_THROW(SparseLU<double>{t}, Error);
}

TEST(SparseLUTest, RandomSparseMatchesDense) {
    Rng rng(17);
    for (int trial = 0; trial < 15; ++trial) {
        const size_t n = static_cast<size_t>(rng.uniform_int(5, 60));
        Triplets<double> t(n);
        for (size_t i = 0; i < n; ++i) t.add(i, i, 3.0 + rng.uniform(0, 1));
        const int extra = static_cast<int>(4 * n);
        for (int k = 0; k < extra; ++k)
            t.add(static_cast<size_t>(rng.uniform_int(0, static_cast<int>(n) - 1)),
                  static_cast<size_t>(rng.uniform_int(0, static_cast<int>(n) - 1)),
                  rng.uniform(-1, 1));
        std::vector<double> xref(n);
        for (auto& v : xref) v = rng.uniform(-1, 1);
        SparseCSC<double> a(t);
        auto b = a.multiply(xref);
        SparseLU<double> lu(a);
        auto x = lu.solve(b);
        EXPECT_LT(max_abs_diff(x, xref), 1e-8) << "n=" << n;
    }
}

TEST(SparseLUTest, TransposeSolve) {
    Rng rng(23);
    const size_t n = 30;
    Triplets<double> t(n);
    for (size_t i = 0; i < n; ++i) t.add(i, i, 4.0);
    for (int k = 0; k < 120; ++k)
        t.add(static_cast<size_t>(rng.uniform_int(0, 29)),
              static_cast<size_t>(rng.uniform_int(0, 29)), rng.uniform(-1, 1));
    SparseCSC<double> a(t);
    std::vector<double> xref(n);
    for (auto& v : xref) v = rng.uniform(-1, 1);
    // b = A^T x
    auto at = a.to_dense().transposed();
    auto b = at.multiply(xref);
    SparseLU<double> lu(a);
    auto x = lu.solve_transpose(b);
    EXPECT_LT(max_abs_diff(x, xref), 1e-9);
}

TEST(SparseLUTest, ComplexSystem) {
    Triplets<Cplx> t(2);
    t.add(0, 0, {1, 1});
    t.add(1, 1, {0, 2});
    t.add(0, 1, {0.5, 0});
    SparseLU<Cplx> lu(t);
    std::vector<Cplx> xref{{1, -1}, {2, 0}};
    SparseCSC<Cplx> a(t);
    auto b = a.multiply(xref);
    auto x = lu.solve(b);
    EXPECT_NEAR(std::abs(x[0] - xref[0]), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(x[1] - xref[1]), 0.0, 1e-12);
}

TEST(SparseLUTest, MnaLikeSaddlePoint) {
    // [ G  B ][v]   [0]
    // [ B' 0 ][i] = [V]  -- classic voltage-source MNA block with zero diag.
    Triplets<double> t(3);
    t.add(0, 0, 1e-3); // small conductance at node 0
    t.add(0, 2, 1.0);
    t.add(2, 0, 1.0);
    t.add(1, 1, 2e-3);
    t.add(0, 1, -1e-3);
    t.add(1, 0, -1e-3);
    SparseLU<double> lu(t);
    auto x = lu.solve({0.0, 0.0, 5.0});
    EXPECT_NEAR(x[0], 5.0, 1e-9); // node 0 pinned to 5 V
}

TEST(VecOpsTest, Basics) {
    std::vector<double> a{1, 2, 3}, b{4, 5, 6};
    EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
    EXPECT_DOUBLE_EQ(norm2({3, 4}), 5.0);
    EXPECT_DOUBLE_EQ(norm_inf(std::vector<double>{-7.0, 2.0}), 7.0);
    axpy(2.0, a, b);
    EXPECT_DOUBLE_EQ(b[2], 12.0);
}

TEST(VecOpsTest, Linspace) {
    auto v = linspace(0.0, 1.0, 5);
    ASSERT_EQ(v.size(), 5u);
    EXPECT_DOUBLE_EQ(v[0], 0.0);
    EXPECT_DOUBLE_EQ(v[2], 0.5);
    EXPECT_DOUBLE_EQ(v[4], 1.0);
}

TEST(VecOpsTest, Logspace) {
    auto v = logspace(1e6, 1e8, 3);
    ASSERT_EQ(v.size(), 3u);
    EXPECT_NEAR(v[1], 1e7, 1.0);
    EXPECT_THROW(logspace(-1.0, 1.0, 3), Error);
}

struct SparseLuSizeCase {
    size_t n;
    int extra_per_row;
};

class SparseLuSweep : public ::testing::TestWithParam<SparseLuSizeCase> {};

TEST_P(SparseLuSweep, ResidualSmall) {
    const auto param = GetParam();
    Rng rng(1000 + param.n);
    Triplets<double> t(param.n);
    for (size_t i = 0; i < param.n; ++i) t.add(i, i, 5.0 + rng.uniform(0, 1));
    for (size_t i = 0; i < param.n; ++i)
        for (int k = 0; k < param.extra_per_row; ++k)
            t.add(i,
                  static_cast<size_t>(
                      rng.uniform_int(0, static_cast<int>(param.n) - 1)),
                  rng.uniform(-1, 1));
    SparseCSC<double> a(t);
    std::vector<double> xref(param.n);
    for (auto& v : xref) v = rng.uniform(-1, 1);
    auto b = a.multiply(xref);
    SparseLU<double> lu(a);
    auto x = lu.solve(b);
    EXPECT_LT(max_abs_diff(x, xref), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SparseLuSweep,
                         ::testing::Values(SparseLuSizeCase{4, 1},
                                           SparseLuSizeCase{32, 3},
                                           SparseLuSizeCase{128, 4},
                                           SparseLuSizeCase{512, 5},
                                           SparseLuSizeCase{1024, 5}));

} // namespace
} // namespace snim
