#include <gtest/gtest.h>

#include "circuit/mosfet.hpp"
#include "circuit/sources.hpp"
#include "layout/connectivity.hpp"
#include "layout/io.hpp"
#include "sim/ac.hpp"
#include "sim/op.hpp"
#include "testcases/nmos_structure.hpp"
#include "testcases/vco.hpp"
#include "util/units.hpp"

namespace snim::testcases {
namespace {

TEST(NmosStructureTest, LayoutIsConsistent) {
    auto s = build_nmos_structure();
    const auto shapes = s.layout.flatten_shapes();
    const auto labels = s.layout.flatten_labels();
    EXPECT_GT(shapes.size(), 20u);
    auto nets = layout::extract_connectivity(shapes, labels, s.tech);
    // The named nets exist.
    EXPECT_GE(nets.find_net("vgnd"), 0);
    EXPECT_GE(nets.find_net("subinj"), 0);
    // Round-trips through the text format.
    auto text = layout::write_layout(s.layout);
    auto back = layout::parse_layout(text);
    EXPECT_EQ(back.flatten_shapes().size(), shapes.size());
}

TEST(NmosStructureTest, SchematicHasExpectedDevices) {
    auto s = build_nmos_structure();
    EXPECT_NE(s.inputs.schematic.find(NmosStructure::kMosfet), nullptr);
    EXPECT_NE(s.inputs.schematic.find(NmosStructure::kNoiseSource), nullptr);
    EXPECT_NE(s.inputs.schematic.find(NmosStructure::kGateSource), nullptr);
    EXPECT_EQ(s.inputs.package.wires.size(), 2u); // gnd + Kelvin source
    EXPECT_FALSE(s.inputs.pins.empty());
}

TEST(NmosStructureTest, WireWidthControlsResistance) {
    NmosStructureOptions narrow;
    narrow.ground_wire_width = 0.8;
    NmosStructureOptions wide;
    wide.ground_wire_width = 1.6;
    core::FlowOptions fo;
    fo.substrate.mesh.fine_pitch = 8.0;
    auto m1 = build_model(build_nmos_structure(narrow), fo);
    auto m2 = build_model(build_nmos_structure(wide), fo);
    const auto* s1 = m1.wire_stats_for("vgnd");
    const auto* s2 = m2.wire_stats_for("vgnd");
    ASSERT_NE(s1, nullptr);
    ASSERT_NE(s2, nullptr);
    EXPECT_NEAR(s1->resistance_squares / s2->resistance_squares, 2.0, 0.35);
}

TEST(VcoTest, LayoutAndEntries) {
    auto v = build_vco();
    const auto shapes = v.layout.flatten_shapes();
    EXPECT_GT(shapes.size(), 30u);
    auto nets = layout::extract_connectivity(shapes, v.layout.flatten_labels(), v.tech);
    EXPECT_GE(nets.find_net("vgnd"), 0);
    EXPECT_GE(nets.find_net("outp"), 0);
    EXPECT_GE(nets.find_net("outn"), 0);
    EXPECT_GE(nets.find_net("vtune"), 0);

    const auto entries = vco_noise_entries();
    ASSERT_EQ(entries.size(), 5u);
    EXPECT_EQ(entries[0].label, "ground interconnect");
    EXPECT_FALSE(entries[0].short_prefixes.empty());
}

TEST(VcoTest, DcEquilibriumIsBalanced) {
    auto v = build_vco();
    auto model = build_model(std::move(v), vco_flow_options());
    auto xop = sim::operating_point(model.netlist);
    const double vp = circuit::volt(xop, model.netlist.existing_node("outp"));
    const double vn = circuit::volt(xop, model.netlist.existing_node("outn"));
    // Symmetric cross-coupled pair: both outputs near mid-rail.
    EXPECT_NEAR(vp, vn, 1e-3);
    EXPECT_GT(vp, 0.5);
    EXPECT_LT(vp, 1.4);
    // Core current in the right ballpark (paper: 5 mA).
    auto* vdd = model.netlist.find_as<circuit::VSource>("vddsrc");
    const double icore = vdd->current(xop);
    EXPECT_GT(icore, 1.5e-3);
    EXPECT_LT(icore, 10e-3);
}

TEST(VcoTest, TankResonanceNearThreeGigahertz) {
    // Small-signal resonance of the stitched tank (the oscillation
    // frequency without running a transient): drive the tank differentially
    // and sweep.
    auto v = build_vco();
    auto model = build_model(std::move(v), vco_flow_options());
    auto& nl = model.netlist;
    nl.add<circuit::ISource>("probe", nl.existing_node("outn"),
                             nl.existing_node("outp"), circuit::Waveform::dc(0.0),
                             circuit::AcSpec{1e-3, 0.0});
    auto xop = sim::operating_point(nl);
    double best_f = 0.0, best_v = 0.0;
    for (double f = 2.2e9; f <= 3.8e9; f += 0.05e9) {
        auto ac = sim::ac_sweep(nl, {f}, xop);
        const double vdiff = std::abs(ac.at(0, nl.existing_node("outp")) -
                                      ac.at(0, nl.existing_node("outn")));
        if (vdiff > best_v) {
            best_v = vdiff;
            best_f = f;
        }
    }
    EXPECT_GT(best_f, 2.5e9);
    EXPECT_LT(best_f, 3.5e9);
}

TEST(VcoTest, StrapWidthOptionChangesGroundWiring) {
    VcoOptions narrow;
    narrow.ground_strap_width = 1.0;
    VcoOptions wide;
    wide.ground_strap_width = 2.0;
    auto m1 = build_model(build_vco(narrow), vco_flow_options());
    auto m2 = build_model(build_vco(wide), vco_flow_options());
    const auto* s1 = m1.wire_stats_for("vgnd");
    const auto* s2 = m2.wire_stats_for("vgnd");
    ASSERT_NE(s1, nullptr);
    ASSERT_NE(s2, nullptr);
    EXPECT_GT(s1->resistance_squares, 1.4 * s2->resistance_squares);
}

TEST(VcoTest, OscOptionsAreDifferential) {
    const auto osc = vco_osc_options();
    EXPECT_EQ(osc.probe_p, std::string(VcoTestcase::kOutP));
    EXPECT_EQ(osc.probe_n, std::string(VcoTestcase::kOutN));
    EXPECT_GT(osc.settle, 0.0);
}

} // namespace
} // namespace snim::testcases
