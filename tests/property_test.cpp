// Cross-module property tests: randomized invariants that complement the
// per-module unit tests.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/netlist.hpp"
#include "circuit/passives.hpp"
#include "circuit/sources.hpp"
#include "circuit/spice_parser.hpp"
#include "circuit/spice_writer.hpp"
#include "dsp/fft.hpp"
#include "geom/rect.hpp"
#include "numeric/vecops.hpp"
#include "sim/ac.hpp"
#include "sim/op.hpp"
#include "sim/transfer.hpp"
#include "sim/transient.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace snim {
namespace {

TEST(PropertyTest, FftParseval) {
    Rng rng(99);
    for (int trial = 0; trial < 5; ++trial) {
        const size_t n = 1u << (8 + trial);
        std::vector<double> x(n);
        for (auto& v : x) v = rng.uniform(-1, 1);
        double time_energy = 0.0;
        for (double v : x) time_energy += v * v;
        auto spec = dsp::fft_real(x);
        double freq_energy = 0.0;
        for (const auto& c : spec) freq_energy += std::norm(c);
        freq_energy /= static_cast<double>(n);
        EXPECT_NEAR(freq_energy, time_energy, 1e-9 * time_energy);
    }
}

TEST(PropertyTest, RectIntersectionIsCommutativeAndContained) {
    Rng rng(5);
    for (int trial = 0; trial < 200; ++trial) {
        geom::Rect a(rng.uniform(-10, 10), rng.uniform(-10, 10), rng.uniform(-10, 10),
                     rng.uniform(-10, 10));
        geom::Rect b(rng.uniform(-10, 10), rng.uniform(-10, 10), rng.uniform(-10, 10),
                     rng.uniform(-10, 10));
        const auto i1 = a.intersection(b);
        const auto i2 = b.intersection(a);
        EXPECT_EQ(i1.empty(), i2.empty());
        if (!i1.empty()) {
            EXPECT_TRUE(a.contains(i1));
            EXPECT_TRUE(b.contains(i1));
            EXPECT_NEAR(i1.area(), i2.area(), 1e-12);
            // Union area identity.
            EXPECT_NEAR(geom::union_area({a, b}), a.area() + b.area() - i1.area(),
                        1e-9);
        }
    }
}

TEST(PropertyTest, SpiceRoundTripPreservesRandomLadders) {
    Rng rng(21);
    for (int trial = 0; trial < 10; ++trial) {
        // Random RC ladder netlist text.
        std::string deck = "random ladder\nVin n0 0 dc 1 ac 1\n";
        const int stages = rng.uniform_int(2, 8);
        std::vector<double> rvals, cvals;
        for (int i = 0; i < stages; ++i) {
            rvals.push_back(std::round(rng.uniform(10, 5000)));
            cvals.push_back(std::round(rng.uniform(1, 999)) * 1e-15);
            deck += format("R%d n%d n%d %g\n", i, i, i + 1, rvals.back());
            deck += format("C%d n%d 0 %gf\n", i, i + 1, cvals.back() * 1e15);
        }
        auto first = circuit::parse_spice(deck);
        auto dumped = circuit::write_spice(first.netlist, first.title);
        auto second = circuit::parse_spice(dumped);
        ASSERT_EQ(second.netlist.device_count(), first.netlist.device_count());
        for (int i = 0; i < stages; ++i) {
            auto* r = second.netlist.find_as<circuit::Resistor>(format("r%d", i));
            auto* c = second.netlist.find_as<circuit::Capacitor>(format("c%d", i));
            ASSERT_NE(r, nullptr);
            ASSERT_NE(c, nullptr);
            EXPECT_NEAR(r->resistance(), rvals[static_cast<size_t>(i)],
                        1e-4 * rvals[static_cast<size_t>(i)]);
            EXPECT_NEAR(c->capacitance(), cvals[static_cast<size_t>(i)],
                        1e-4 * cvals[static_cast<size_t>(i)]);
        }
    }
}

TEST(PropertyTest, ReciprocityOfResistiveNetworks) {
    // For a reciprocal (RLC) network, the transfer impedance from an
    // injection at node a to node b equals the one from b to a.
    Rng rng(31);
    for (int trial = 0; trial < 5; ++trial) {
        circuit::Netlist nl;
        const int n = 8;
        for (int i = 0; i < n; ++i)
            nl.add<circuit::Resistor>(format("rg%d", i), nl.node(format("n%d", i)),
                                      circuit::kGround,
                                      std::round(rng.uniform(100, 2000)));
        for (int k = 0; k < 14; ++k) {
            int a = rng.uniform_int(0, n - 1);
            int b = rng.uniform_int(0, n - 1);
            if (a == b) continue;
            nl.add<circuit::Resistor>(format("rr%d", k), nl.node(format("n%d", a)),
                                      nl.node(format("n%d", b)),
                                      std::round(rng.uniform(50, 5000)));
        }
        nl.add<circuit::Capacitor>("cx", nl.node("n1"), nl.node("n5"), 1e-12);

        auto run = [&](const char* from, const char* to) {
            nl.add<circuit::ISource>("probe", circuit::kGround, nl.node(from),
                                     circuit::Waveform::dc(0.0),
                                     circuit::AcSpec{1.0, 0.0});
            auto xop = sim::operating_point(nl);
            auto ac = sim::ac_sweep(nl, {37e6}, xop);
            auto z = ac.at(0, nl.existing_node(to));
            nl.remove("probe");
            return z;
        };
        const auto z_ab = run("n0", "n6");
        const auto z_ba = run("n6", "n0");
        EXPECT_NEAR(std::abs(z_ab - z_ba), 0.0, 1e-9 * std::abs(z_ab) + 1e-12);
    }
}

TEST(PropertyTest, AcAndTransientAgreeOnLinearFilter) {
    // Drive a 2-pole RC with a sine and compare the settled transient
    // amplitude to |H| from AC -- the two analyses must be consistent.
    circuit::Netlist nl;
    nl.add<circuit::VSource>("vin", nl.node("in"), circuit::kGround,
                             circuit::Waveform::sin(0.0, 0.5, 20e6),
                             circuit::AcSpec{1.0, 0.0});
    nl.add<circuit::Resistor>("r1", nl.node("in"), nl.node("m"), 1000.0);
    nl.add<circuit::Capacitor>("c1", nl.node("m"), circuit::kGround, 5e-12);
    nl.add<circuit::Resistor>("r2", nl.node("m"), nl.node("out"), 2000.0);
    nl.add<circuit::Capacitor>("c2", nl.node("out"), circuit::kGround, 3e-12);

    auto xop = sim::operating_point(nl);
    auto ac = sim::ac_sweep(nl, {20e6}, xop);
    const double h = std::abs(ac.at(0, nl.existing_node("out")));

    sim::TranOptions topt;
    topt.tstop = 600e-9;
    topt.dt = 0.2e-9;
    topt.record_start = 300e-9; // several time constants of settling
    auto res = sim::transient(nl, {"out"}, topt);
    double vmax = 0.0;
    for (double v : res.wave("out")) vmax = std::max(vmax, std::fabs(v));
    EXPECT_NEAR(vmax, 0.5 * h, 0.02 * 0.5 * h);
}

TEST(PropertyTest, EngFormatRoundTripsThroughParser) {
    Rng rng(77);
    for (int trial = 0; trial < 300; ++trial) {
        const double mag = std::pow(10.0, rng.uniform(-14.5, 11.5));
        const double v = (rng.uniform() < 0.5 ? -1 : 1) * mag;
        const double back = parse_spice_number(eng_format(v, 9));
        EXPECT_NEAR(back, v, 1e-6 * std::fabs(v)) << "v=" << v;
    }
}

} // namespace
} // namespace snim
