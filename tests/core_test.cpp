#include <gtest/gtest.h>

#include <cmath>

#include "core/classify.hpp"
#include "core/impact_flow.hpp"
#include "core/report.hpp"
#include "numeric/vecops.hpp"
#include "sim/op.hpp"
#include "sim/transfer.hpp"
#include "testcases/nmos_structure.hpp"
#include "util/error.hpp"
#include "util/units.hpp"

namespace snim::core {
namespace {

TEST(ClassifyTest, SlopeFit) {
    // Exactly -20 dB/dec data.
    std::vector<double> f{1e6, 2e6, 5e6, 1e7};
    std::vector<double> db;
    for (double x : f) db.push_back(-20.0 * std::log10(x / 1e6) - 30.0);
    EXPECT_NEAR(db_slope_per_decade(f, db), -20.0, 1e-9);
    EXPECT_THROW(db_slope_per_decade({1e6}, {0.0}), Error);
}

TEST(ClassifyTest, ResistiveFm) {
    std::vector<double> f{1e6, 3e6, 1e7};
    std::vector<double> h{-60, -60, -60};            // flat |H|
    std::vector<double> spur{-40, -49.5, -60};       // -20 dB/dec
    auto r = classify_mechanism(f, h, spur);
    EXPECT_EQ(r.coupling, CouplingKind::Resistive);
    EXPECT_EQ(r.modulation, ModulationKind::FM);
    EXPECT_NE(r.describe().find("resistive"), std::string::npos);
}

TEST(ClassifyTest, ResistiveAm) {
    std::vector<double> f{1e6, 3e6, 1e7};
    std::vector<double> h{-60, -60, -60};
    std::vector<double> spur{-55, -55, -55}; // flat
    auto r = classify_mechanism(f, h, spur);
    EXPECT_EQ(r.coupling, CouplingKind::Resistive);
    EXPECT_EQ(r.modulation, ModulationKind::AM);
}

TEST(ClassifyTest, CapacitiveFm) {
    std::vector<double> f{1e6, 3e6, 1e7};
    std::vector<double> h{-80, -70.5, -60};  // +20 dB/dec
    std::vector<double> spur{-70, -70, -70}; // flat spur = capacitive + FM
    auto r = classify_mechanism(f, h, spur);
    EXPECT_EQ(r.coupling, CouplingKind::Capacitive);
    EXPECT_EQ(r.modulation, ModulationKind::FM);
}

TEST(ClassifyTest, Names) {
    EXPECT_EQ(to_string(CouplingKind::Resistive), "resistive");
    EXPECT_EQ(to_string(CouplingKind::Capacitive), "capacitive");
    EXPECT_EQ(to_string(ModulationKind::FM), "FM");
    EXPECT_EQ(to_string(ModulationKind::Mixed), "mixed");
}

// ---------------------------------------------------------------------------
// Flow integration on the NMOS measurement structure (AC-level, fast).
class FlowTest : public ::testing::Test {
protected:
    static void SetUpTestSuite() {
        auto structure = testcases::build_nmos_structure();
        core::FlowOptions fo;
        fo.substrate.mesh.focus = geom::Rect(-20, -20, 50, 30);
        fo.substrate.mesh.fine_pitch = 5.0;
        fo.substrate.mesh.margin = 40.0;
        model_ = new ImpactModel(
            testcases::build_model(std::move(structure), fo));
    }
    static void TearDownTestSuite() {
        delete model_;
        model_ = nullptr;
    }
    static ImpactModel* model_;
};

ImpactModel* FlowTest::model_ = nullptr;

TEST_F(FlowTest, StitchedModelHasAllPieces) {
    auto& nl = model_->netlist;
    // Schematic, substrate macromodel, interconnect and package all present.
    EXPECT_TRUE(nl.has_node(testcases::NmosStructure::kOut));
    EXPECT_TRUE(nl.has_node(testcases::NmosStructure::kBulk));
    EXPECT_TRUE(nl.has_node("gnd_pad"));
    EXPECT_NE(nl.find("pkg:l0"), nullptr);
    EXPECT_NE(nl.find("sub:r0"), nullptr);
    EXPECT_GT(model_->mesh_nodes, 1000u);
    EXPECT_GE(model_->substrate.port_names.size(), 5u);
    // Ground net wiring was extracted with real resistance.
    const auto* st = model_->wire_stats_for("vgnd");
    ASSERT_NE(st, nullptr);
    EXPECT_GT(st->resistance_squares, 100.0);
}

TEST_F(FlowTest, OperatingPointIsSane) {
    auto xop = sim::operating_point(model_->netlist);
    const double vout = circuit::volt(
        xop, model_->netlist.existing_node(testcases::NmosStructure::kOut));
    EXPECT_GT(vout, 0.2);
    EXPECT_LT(vout, 1.1);
    // The source node sits near board ground (the solid strap plus the
    // bondwire carry ~20 mA of drain bias, a few tens of mV of IR).
    const double vs = circuit::volt(
        xop, model_->netlist.existing_node(testcases::NmosStructure::kSourceNode));
    EXPECT_LT(std::fabs(vs), 0.15);
}

TEST_F(FlowTest, SubstrateTransferIsResistiveInBand) {
    auto& nl = model_->netlist;
    auto xop = sim::operating_point(nl);
    auto freqs = logspace(1e6, 15e6, 4);
    auto tr = sim::transfer(nl, testcases::NmosStructure::kNoiseSource,
                            testcases::NmosStructure::kBulk, freqs, xop);
    std::vector<double> hdb;
    for (size_t k = 0; k < freqs.size(); ++k) hdb.push_back(tr.mag_db(k));
    // Resistive coupling: |H| flat within a couple of dB per decade.
    EXPECT_LT(std::fabs(db_slope_per_decade(freqs, hdb)), 3.0);
    // And attenuating (the injection is far away).
    EXPECT_LT(hdb[0], -20.0);
}

TEST_F(FlowTest, BackGateSeesMoreNoiseThanGroundedSource) {
    auto& nl = model_->netlist;
    auto xop = sim::operating_point(nl);
    auto tr = sim::transfer_multi(nl, testcases::NmosStructure::kNoiseSource,
                                  {testcases::NmosStructure::kBulk,
                                   testcases::NmosStructure::kSourceNode},
                                  {5e6}, xop);
    EXPECT_GT(std::abs(tr[0].h[0]), 3.0 * std::abs(tr[1].h[0]));
}

TEST_F(FlowTest, ImpactFlowRejectsMissingInputs) {
    FlowInputs inputs;
    EXPECT_THROW(build_impact_model(std::move(inputs)), Error);
}

TEST_F(FlowTest, ModelReportIsConsistent) {
    const auto r = report_model(*model_);
    EXPECT_EQ(r.devices, model_->netlist.device_count());
    EXPECT_EQ(r.nodes, model_->netlist.node_count());
    EXPECT_EQ(r.devices,
              r.resistors + r.capacitors + r.inductors + r.mosfets + r.sources +
                  r.others);
    EXPECT_GE(r.mosfets, 1u);
    EXPECT_GT(r.resistors, 10u);
    EXPECT_GT(r.total_wire_squares, 100.0);
    EXPECT_TRUE(r.floating_nodes.empty()) << r.to_string();
    EXPECT_NE(r.to_string().find("no floating nodes"), std::string::npos);
}

TEST(FlowOptionsTest, IdealInterconnectRemovesWireResistance) {
    auto structure = testcases::build_nmos_structure();
    core::FlowOptions fo;
    fo.substrate.mesh.focus = geom::Rect(-20, -20, 50, 30);
    fo.substrate.mesh.fine_pitch = 6.0;
    fo.interconnect.extract_resistance = false;
    auto model = testcases::build_model(std::move(structure), fo);
    // All wire segments collapse to milliohm links; squares still counted.
    auto xop = sim::operating_point(model.netlist);
    const double v_src = circuit::volt(
        xop, model.netlist.existing_node(testcases::NmosStructure::kSourceNode));
    EXPECT_LT(std::fabs(v_src), 5e-3); // bondwire R remains
}

} // namespace
} // namespace snim::core
